//! A dependency-free **persistent** worker-thread runtime for
//! data-parallel assertion checking.
//!
//! The paper's §7 argues assertion monitoring is cheap enough to run
//! inline with deployment ("can be run … over every model invocation");
//! scaling that to many streams and large assertion sets means scoring
//! independent `(sample, assertion)` pairs on every core — *without*
//! paying a thread spawn per scoring call. [`ThreadPool`] keeps
//! `threads - 1` long-lived workers parked on a condvar (the calling
//! thread is always worker 0), hands each `map_indexed` call to them as
//! a **job** through a lifetime-erased job cell, and merges results with
//! **deterministic, input-order merging**. Between jobs the workers cost
//! nothing but a parked thread; a streaming hot loop that scores
//! thousands of batches re-uses the same workers for all of them (the
//! engine's zero-respawn probe pins this down).
//!
//! # Borrowed data without `'static`
//!
//! Jobs borrow the caller's stack: the closure, the atomic chunk cursor,
//! and the result buffers all live in the `map_indexed` frame, published
//! to the workers as a type-erased `(data pointer, run function)` pair.
//! Soundness rests on a strict handshake: a worker may only *join* a job
//! under the pool mutex (incrementing the in-flight count), and the
//! submitting call only retracts the job — and only then returns — after
//! the in-flight count has drained to zero. No worker can observe the
//! job cell after the frame it points into is gone. This is the one
//! place in the engine that uses `unsafe`; everything above it is safe
//! code.
//!
//! The handshake is not just argued — it is **model checked**: the pool
//! is written against the [`crate::sync`] facade, and under
//! `--cfg omg_model` the `omg-verify` crate explores every interleaving
//! of this exact source (publish, join, drain, retract, shutdown)
//! within a preemption bound, with seeded mutations proving each
//! invariant check can actually fire. See `DESIGN.md` §"Verification".
//!
//! # Determinism
//!
//! [`ThreadPool::map_indexed`] self-schedules contiguous index chunks
//! onto workers via an atomic cursor, so *which* thread computes an item
//! is nondeterministic — but every item is a pure function of its index
//! and the merged output is always in index order. Callers that keep
//! their closures pure therefore get bit-for-bit identical results at any
//! thread count, which the engine's determinism property tests enforce.
//!
//! # Panics
//!
//! A panic inside a job closure is caught on whichever thread hit it,
//! the job is aborted (no new chunks start), and the first panic payload
//! is re-thrown on the calling thread once every worker has left the
//! job. The workers themselves survive: the pool remains usable after a
//! panicked job.
//!
//! # Example
//!
//! ```
//! use omg_core::runtime::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.map_indexed(5, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16]);
//! // Identical to the sequential path, at any thread count.
//! assert_eq!(squares, ThreadPool::sequential().map_indexed(5, |i| i * i));
//! ```

use crate::sync::thread::{self, JoinHandle};
use crate::sync::{job_cell, mutation_enabled, AtomicBool, AtomicUsize, Condvar, Mutex};
use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A type-erased job published to the workers: a pointer to a
/// stack-resident [`Task`] plus the monomorphized function that runs it.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    run: unsafe fn(*const ()),
}

// SAFETY: the pointer targets a `Task` pinned in the submitting
// `map_with_chunk` frame, which provably outlives every dereference: a
// worker joins a job only under the pool mutex (incrementing
// `in_flight`), and the submitter retracts the job and returns only
// after `in_flight` drains to zero. The `Task` itself is `Sync` data
// (atomics, mutexes, and a `Fn + Sync` closure reference).
#[allow(unsafe_code)]
unsafe impl Send for Job {}

/// The condvar-guarded handshake state between the submitter and the
/// parked workers.
struct JobState {
    /// Bumped once per published job so a worker never mistakes a new
    /// job for one it already ran.
    generation: u64,
    /// The currently published job, if any.
    job: Option<Job>,
    /// Workers currently inside the job (joined under the mutex, left
    /// under the mutex).
    in_flight: usize,
    /// Set once, on drop: parked workers exit instead of waiting.
    shutdown: bool,
}

/// State shared between the pool handle(s) and the worker threads.
struct Shared {
    state: Mutex<JobState>,
    /// Workers park here waiting for the next generation (or shutdown).
    start: Condvar,
    /// The submitter parks here waiting for `in_flight` to drain.
    done: Condvar,
    /// Lifetime count of worker threads ever spawned — the observable
    /// behind the zero-respawn probe: it never grows after `new`.
    spawned: AtomicUsize,
}

/// Owns the worker join handles; dropping the last pool clone shuts the
/// workers down and joins them. Kept separate from [`Shared`] because
/// the workers themselves hold `Arc<Shared>` clones — tying the handles'
/// lifetime to `Shared` would keep the pool alive forever.
struct Handles {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle>>,
}

impl Drop for Handles {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.shutdown = true;
        }
        // Mutation skip-shutdown-notify: set the flag but never wake
        // the parked workers — the model checker must report the join
        // below deadlocking on a stranded worker.
        if !mutation_enabled("skip-shutdown-notify") {
            self.shared.start.notify_all();
        }
        for handle in self.handles.lock().expect("handles poisoned").drain(..) {
            let _ = handle.join();
        }
    }
}

/// A fixed-size pool of **persistent** worker threads.
///
/// `new(threads)` spawns `threads - 1` long-lived workers (the calling
/// thread always participates as worker 0, so a 1-thread pool spawns
/// nothing and runs everything inline). Workers park on a condvar
/// between jobs; every [`ThreadPool::map_indexed`] call is a job
/// submission, not a spawn — the streaming hot loop re-enters the pool
/// thousands of times per second without creating a single thread.
///
/// Clones share the same workers; the workers shut down and join when
/// the last clone drops.
pub struct ThreadPool {
    threads: usize,
    /// What [`ThreadPool::fanout`] reports: `threads` capped at the
    /// machine's cores for [`ThreadPool::new`], uncapped for
    /// [`ThreadPool::exact`].
    fanout: usize,
    shared: Arc<Shared>,
    _handles: Arc<Handles>,
}

impl ThreadPool {
    /// Creates a pool with the given worker count, spawning its
    /// `threads - 1` persistent background workers immediately.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero, or if the OS refuses to spawn a
    /// worker thread.
    pub fn new(threads: usize) -> Self {
        let cores = thread::available_parallelism();
        Self::with_fanout(threads, threads.min(cores))
    }

    /// [`ThreadPool::new`] without the scoring-fanout cap: `fanout()`
    /// reports the full `threads` even beyond the machine's cores.
    /// For tests and probes that must exercise the chunked parallel
    /// path (margin skipping, range-copy merging, the job handshake)
    /// deterministically on any host — production callers want
    /// [`ThreadPool::new`], where oversubscribed fan-out is capped.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero, or if the OS refuses to spawn a
    /// worker thread.
    pub fn exact(threads: usize) -> Self {
        Self::with_fanout(threads, threads)
    }

    fn with_fanout(threads: usize, fanout: usize) -> Self {
        assert!(threads > 0, "thread pool needs at least one thread");
        let shared = Arc::new(Shared {
            state: Mutex::new(JobState {
                generation: 0,
                job: None,
                in_flight: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            spawned: AtomicUsize::new(0),
        });
        let mut handles = Vec::with_capacity(threads - 1);
        for w in 1..threads {
            let worker_shared = Arc::clone(&shared);
            let handle = thread::spawn_named(format!("omg-worker-{w}"), move || {
                worker_loop(&worker_shared)
            });
            shared.spawned.fetch_add(1, Ordering::SeqCst);
            handles.push(handle);
        }
        Self {
            threads,
            fanout,
            _handles: Arc::new(Handles {
                shared: Arc::clone(&shared),
                handles: Mutex::new(handles),
            }),
            shared,
        }
    }

    /// The single-threaded pool: every `map_indexed` call runs inline on
    /// the caller's thread, and no worker threads exist at all. Useful
    /// as a default and as the reference implementation the parallel
    /// path must match bit-for-bit.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// A pool sized to the machine's available parallelism (1 if the
    /// runtime cannot tell).
    pub fn available() -> Self {
        Self::new(thread::available_parallelism())
    }

    /// The worker count (including the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The worker count worth fanning CPU-bound scoring out to:
    /// [`ThreadPool::threads`] capped at the machine's available
    /// parallelism (uncapped for [`ThreadPool::exact`] pools). Scoring
    /// is pure compute, so oversubscribing cores buys nothing and
    /// costs context switches; the scoring drivers use this for chunk
    /// geometry (results are thread-count-invariant either way — the
    /// cap changes wall-clock only, never output).
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Total worker threads ever spawned by this pool — `threads - 1`
    /// at construction, and **never again**: repeated scoring calls
    /// re-use the same parked workers. The engine's zero-respawn probe
    /// asserts this stays flat across a streaming workload.
    pub fn spawned_workers(&self) -> usize {
        self.shared.spawned.load(Ordering::SeqCst)
    }

    /// Computes `f(0), f(1), …, f(n - 1)` across the pool's workers and
    /// returns the results **in index order**.
    ///
    /// Work is self-scheduled in contiguous chunks (an atomic cursor
    /// hands the next chunk to whichever worker is free), so uneven item
    /// costs balance across threads. `f` must be a pure function of the
    /// index for the output to be deterministic; all engine callers are.
    ///
    /// # Panics
    ///
    /// Panics if any invocation of `f` panics (the first panic is
    /// re-thrown on the calling thread after all workers leave the job;
    /// the pool itself stays usable).
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        // Chunks ~4x the worker count balance load without shredding
        // cache locality; a chunk is never empty.
        self.map_with_chunk(n, n.div_ceil(self.threads * 4).max(1), f)
    }

    /// Like [`ThreadPool::map_indexed`], but each work unit is a single
    /// index: the atomic cursor hands out indices one at a time instead
    /// of contiguous chunks.
    ///
    /// Use this when each index is already a *coarse* unit of work — a
    /// whole session's backlog, a whole file — where per-item scheduling
    /// overhead is noise but a fat chunk would serialize several big
    /// units onto one worker (the per-window fan-out regression that
    /// motivated per-session work division). The output is still merged
    /// in index order.
    pub fn map_indexed_coarse<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_with_chunk(n, 1, f)
    }

    fn map_with_chunk<T, F>(&self, n: usize, chunk: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || n < 2 || n.div_ceil(chunk) < 2 {
            return (0..n).map(f).collect();
        }
        let n_chunks = n.div_ceil(chunk);
        let task: Task<T, F> = Task {
            cursor: AtomicUsize::new(0),
            n,
            chunk,
            f: &f,
            results: Mutex::new(Vec::with_capacity(n_chunks)),
            panic: Mutex::new(None),
            abort: AtomicBool::new(false),
        };
        let task_ptr = std::ptr::from_ref(&task).cast::<()>();
        // Model-only canary (zero-sized no-op in production): this
        // frame must not die — by return *or* unwind — while the job
        // is published or a worker is inside it.
        let _frame = job_cell::frame_guard(task_ptr);
        // PANIC: a poisoned pool lock means a worker already panicked;
        // propagating beats running the handshake on corrupt state.
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            if st.job.is_some() {
                // The pool is mid-job (a nested or concurrent submission):
                // run inline rather than corrupting the handshake.
                drop(st);
                return (0..n).map(f).collect();
            }
            st.generation += 1;
            st.job = Some(Job {
                data: task_ptr,
                run: run_task::<T, F>,
            });
            job_cell::publish(task_ptr);
        }
        self.shared.start.notify_all();
        // The caller is worker 0: it drains chunks alongside the others
        // (and, on a busy machine, may well drain them all before a
        // worker wakes — which is exactly the cheap case).
        run_chunks(&task);
        // Mutation rethrow-before-drain: re-throw the panic while
        // workers may still be in the job — the frame canary must
        // report the drain violation as this frame unwinds.
        if mutation_enabled("rethrow-before-drain") {
            // PANIC: poisoning here implies a panic already in flight.
            if let Some(payload) = task.panic.lock().expect("panic slot poisoned").take() {
                std::panic::resume_unwind(payload);
            }
        }
        // Retract the job only after every joined worker has left it, so
        // no worker can observe `task` after this frame unwinds.
        // PANIC: poisoned pool state means a worker panicked outside
        // catch_unwind; the pool invariants are gone, so propagate.
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            while st.in_flight > 0 {
                // Mutation skip-drain-wait: retract without waiting for
                // the in-flight workers — the model checker must catch
                // the resulting use-after-retract / drain violation.
                if mutation_enabled("skip-drain-wait") {
                    break;
                }
                // PANIC: condvar wait re-acquires the poisoned lock.
                st = self.shared.done.wait(st).expect("pool state poisoned");
            }
            st.job = None;
            job_cell::retract(task_ptr);
        }
        // PANIC: both slots are poisoned only if a thread panicked while
        // holding them, and this path's job is to re-throw that panic.
        if let Some(payload) = task.panic.lock().expect("panic slot poisoned").take() {
            std::panic::resume_unwind(payload);
        }
        // Chunks arrive in completion order; restore global index order.
        // Starts are distinct, so the sort is total.
        let mut chunks = task.results.into_inner().expect("results poisoned");
        chunks.sort_unstable_by_key(|&(start, _)| start);
        debug_assert_eq!(chunks.iter().map(|(_, c)| c.len()).sum::<usize>(), n);
        chunks.into_iter().flat_map(|(_, c)| c).collect()
    }
}

/// The stack-resident state of one job, shared (borrowed) by every
/// thread that runs it.
struct Task<'f, T, F> {
    /// Next unclaimed index (chunks are `[cursor, cursor + chunk)`).
    cursor: AtomicUsize,
    n: usize,
    chunk: usize,
    f: &'f F,
    /// Completed `(start, items)` chunks, in completion order.
    results: Mutex<Vec<(usize, Vec<T>)>>,
    /// The first caught panic payload, re-thrown by the submitter.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Set on the first panic: no new chunks start.
    abort: AtomicBool,
}

/// Monomorphized job entry point: recovers the concrete [`Task`] from
/// the erased pointer and drains chunks. The `unsafe fn` contract is
/// the pool's drain handshake: callers must have joined the job under
/// the pool mutex so the submitter is obligated to keep `data`'s
/// target alive until they leave.
#[allow(unsafe_code)]
unsafe fn run_task<T, F>(data: *const ())
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    // Model hook (no-op in production): fail the schedule if this
    // worker is entering a retracted cell, and count it as inside the
    // frame until the matching `exit` below.
    job_cell::enter(data, "run_task");
    // SAFETY: `data` was created from a `&Task<T, F>` by the submitter
    // using exactly these type parameters, and the in-flight handshake
    // (see `Job`) keeps that task alive for the duration of this call —
    // the property the model checker exhausts schedules against.
    let task = unsafe { &*data.cast::<Task<'_, T, F>>() };
    run_chunks(task);
    job_cell::exit(data);
}

/// Claims and runs chunks until the cursor is exhausted (or the job
/// aborts after a panic). Shared by the submitting thread and the
/// workers, so both participate in the same self-scheduled queue.
fn run_chunks<T, F>(task: &Task<'_, T, F>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let task_ptr = std::ptr::from_ref(task).cast::<()>();
    loop {
        // Model hook (no-op in production): every trip through the
        // claim loop re-checks that the job has not been retracted out
        // from under this thread.
        job_cell::assert_live(task_ptr, "run_chunks");
        // Relaxed: advisory abort flag — a stale `false` only costs one
        // extra chunk of already-doomed work; the panic payload itself
        // travels through the `panic` mutex. (Audited: see omg-lint's
        // relaxed-orderings ledger.)
        if task.abort.load(Ordering::Relaxed) {
            break;
        }
        // Relaxed: chunk claims need the RMW's atomicity, not ordering —
        // claimed indices are data-independent, and all result/panic
        // data transfers are mutex-protected. (Audited: see omg-lint's
        // relaxed-orderings ledger.)
        let start = if mutation_enabled("torn-cursor-claim") {
            // Mutation: tear the claim into a load + store, the classic
            // lost-update race — some schedule runs a chunk twice.
            let seen = task.cursor.load(Ordering::Relaxed);
            task.cursor.store(seen + task.chunk, Ordering::Relaxed);
            seen
        } else {
            task.cursor.fetch_add(task.chunk, Ordering::Relaxed)
        };
        if start >= task.n {
            break;
        }
        let end = (start + task.chunk).min(task.n);
        let f = task.f;
        // PANIC: results-lock poisoning implies another worker panicked
        // holding it; the job is already doomed, so propagate.
        match std::panic::catch_unwind(AssertUnwindSafe(|| (start..end).map(f).collect::<Vec<T>>()))
        {
            Ok(items) => task
                .results
                .lock()
                .expect("results poisoned")
                .push((start, items)),
            Err(payload) => {
                // Relaxed: see the abort load above — advisory only.
                // (Audited: see omg-lint's relaxed-orderings ledger.)
                // PANIC: same poisoning argument for the panic slot.
                task.abort.store(true, Ordering::Relaxed);
                let mut slot = task.panic.lock().expect("panic slot poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
                break;
            }
        }
    }
}

/// What each persistent worker runs: park until a new job generation is
/// published, join it, drain chunks, leave it, park again — until
/// shutdown.
fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let job = {
            // PANIC: poisoned pool state means another thread panicked
            // mid-handshake; a worker cannot recover it, so propagate.
            let mut st = shared.state.lock().expect("pool state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    if let Some(job) = st.job {
                        // Join the job under the mutex: from here the
                        // submitter is obligated to wait for us.
                        st.in_flight += 1;
                        break job;
                    }
                    // The job was already retracted; nothing to do.
                }
                // PANIC: condvar wait re-acquires the poisoned lock.
                st = shared.start.wait(st).expect("pool state poisoned");
            }
        };
        #[allow(unsafe_code)]
        // SAFETY: joined under the mutex above, so the submitter keeps
        // the task alive until we report back.
        unsafe {
            (job.run)(job.data)
        };
        // PANIC: same poisoning argument when leaving the job.
        let mut st = shared.state.lock().expect("pool state poisoned");
        st.in_flight -= 1;
        // Mutation skip-done-notify: leave without waking the draining
        // submitter — the model checker must report the lost wakeup as
        // a deadlock.
        if st.in_flight == 0 && !mutation_enabled("skip-done-notify") {
            // Only the submitter ever waits on `done`.
            shared.done.notify_all();
        }
    }
}

impl Clone for ThreadPool {
    fn clone(&self) -> Self {
        Self {
            threads: self.threads,
            fanout: self.fanout,
            shared: Arc::clone(&self.shared),
            _handles: Arc::clone(&self._handles),
        }
    }
}

/// Pools compare by worker count: two pools of the same size are
/// interchangeable (their outputs are bit-for-bit identical for pure
/// closures), whether or not they share workers.
impl PartialEq for ThreadPool {
    fn eq(&self, other: &Self) -> bool {
        self.threads == other.threads
    }
}

impl Eq for ThreadPool {}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .field("spawned_workers", &self.spawned_workers())
            .finish()
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::sequential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        ThreadPool::new(0);
    }

    #[test]
    fn sequential_and_default_are_one_thread() {
        assert_eq!(ThreadPool::sequential().threads(), 1);
        assert_eq!(ThreadPool::default(), ThreadPool::sequential());
        assert!(ThreadPool::available().threads() >= 1);
        assert_eq!(ThreadPool::sequential().spawned_workers(), 0);
    }

    #[test]
    fn map_preserves_index_order() {
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            for n in [0, 1, 2, 7, 64, 1000] {
                let got = pool.map_indexed(n, |i| 3 * i + 1);
                let want: Vec<usize> = (0..n).map(|i| 3 * i + 1).collect();
                assert_eq!(got, want, "threads={threads} n={n}");
            }
        }
    }

    #[test]
    fn uneven_work_still_merges_in_order() {
        // Early indices are much more expensive than late ones, so chunk
        // completion order differs wildly from index order.
        let pool = ThreadPool::new(4);
        let got = pool.map_indexed(200, |i| {
            let spins = if i < 10 { 20_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        assert_eq!(got.len(), 200);
        for (idx, &(i, _)) in got.iter().enumerate() {
            assert_eq!(i, idx);
        }
    }

    #[test]
    fn more_threads_than_items() {
        let pool = ThreadPool::new(16);
        assert_eq!(pool.map_indexed(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn coarse_map_preserves_index_order() {
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            for n in [0, 1, 2, 7, 64] {
                let got = pool.map_indexed_coarse(n, |i| 5 * i + 2);
                let want: Vec<usize> = (0..n).map(|i| 5 * i + 2).collect();
                assert_eq!(got, want, "threads={threads} n={n}");
            }
        }
    }

    #[test]
    fn coarse_map_runs_every_index_exactly_once() {
        let runs: Vec<AtomicUsize> = (0..40).map(|_| AtomicUsize::new(0)).collect();
        let pool = ThreadPool::new(8);
        pool.map_indexed_coarse(runs.len(), |i| runs[i].fetch_add(1, Ordering::SeqCst));
        assert!(runs.iter().all(|r| r.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed(8, |i| {
                assert!(i != 5, "boom at 5");
                i
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        // The persistent-pool contract: a panicking job is aborted and
        // re-thrown, but the parked workers survive and the next job on
        // the *same* pool runs normally — no respawn, no deadlock.
        let pool = ThreadPool::new(4);
        for round in 0..3 {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.map_indexed(64, |i| {
                    assert!(i != 40, "boom at 40 (round {round})");
                    i
                })
            }));
            assert!(result.is_err(), "round {round} must propagate the panic");
            let got = pool.map_indexed(64, |i| i * 2);
            assert_eq!(got, (0..64).map(|i| i * 2).collect::<Vec<_>>());
        }
        assert_eq!(pool.spawned_workers(), 3, "no worker was ever respawned");
    }

    #[test]
    fn workers_join_cleanly_on_drop() {
        // Dropping the pool (and every clone) must shut the parked
        // workers down and join them without deadlock — including right
        // after jobs, after a panicked job, and for a never-used pool.
        let pool = ThreadPool::new(4);
        pool.map_indexed(100, |i| i);
        let clone = pool.clone();
        drop(pool);
        // The clone still works: workers only shut down with the last
        // handle.
        assert_eq!(clone.map_indexed(5, |i| i + 1), vec![1, 2, 3, 4, 5]);
        drop(clone);

        let panicked = ThreadPool::new(3);
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            panicked.map_indexed(32, |i| {
                assert!(i != 30);
                i
            })
        }));
        drop(panicked);

        drop(ThreadPool::new(5));
    }

    #[test]
    fn workers_are_spawned_once_and_reused() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.spawned_workers(), 3);
        for _ in 0..50 {
            let _ = pool.map_indexed(257, |i| i as u64 * 3);
        }
        assert_eq!(
            pool.spawned_workers(),
            3,
            "map_indexed must submit jobs, not spawn threads"
        );
    }

    #[test]
    fn nested_submission_runs_inline() {
        // A closure that re-enters the same pool must not corrupt the
        // job handshake: the nested call runs inline and stays correct.
        let pool = ThreadPool::new(2);
        let pool2 = pool.clone();
        let got = pool.map_indexed(6, move |i| {
            pool2.map_indexed(4, |j| i * j).iter().sum::<usize>()
        });
        let want: Vec<usize> = (0..6).map(|i| (0..4).map(|j| i * j).sum()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn borrows_non_static_data() {
        let data = [10, 20, 30, 40];
        let pool = ThreadPool::new(2);
        let doubled = pool.map_indexed(data.len(), |i| data[i] * 2);
        assert_eq!(doubled, vec![20, 40, 60, 80]);
    }

    #[test]
    fn one_thread_pool_is_fully_inline() {
        // threads == 1 must never publish a job: no workers exist to
        // run one, and the inline path must cover every size.
        let pool = ThreadPool::new(1);
        assert_eq!(pool.spawned_workers(), 0);
        for n in [0, 1, 2, 3, 100] {
            let got = pool.map_indexed(n, |i| i * 7);
            assert_eq!(got, (0..n).map(|i| i * 7).collect::<Vec<_>>(), "n={n}");
        }
        assert_eq!(pool.map_indexed_coarse(3, |i| i), vec![0, 1, 2]);
        assert_eq!(pool.spawned_workers(), 0, "inline path must stay inline");
    }

    #[test]
    fn empty_map_on_parallel_pool_publishes_nothing() {
        let pool = ThreadPool::exact(4);
        assert_eq!(pool.map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(
            pool.map_indexed_coarse(0, |_| unreachable!() as usize),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn drop_immediately_after_panicked_job() {
        // The hardest drop ordering: the very first job panics, and the
        // pool is dropped with no intervening successful job — shutdown
        // must still join every worker.
        let pool = ThreadPool::exact(4);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed_coarse(8, |i| {
                assert!(i != 3, "boom at 3");
                i
            })
        }));
        assert!(result.is_err());
        drop(pool);
    }

    #[test]
    fn nested_map_indexed_from_a_job_closure() {
        // Two levels of nesting from inside a running job: every inner
        // call sees the cell occupied and runs inline, at any depth.
        let pool = ThreadPool::new(3);
        let inner = pool.clone();
        let got = pool.map_indexed(4, move |i| {
            let innermost = inner.clone();
            inner
                .map_indexed(3, move |j| {
                    innermost
                        .map_indexed(2, |k| i + j + k)
                        .iter()
                        .sum::<usize>()
                })
                .iter()
                .sum::<usize>()
        });
        let want: Vec<usize> = (0..4)
            .map(|i| {
                (0..3)
                    .map(|j| (0..2).map(|k| i + j + k).sum::<usize>())
                    .sum()
            })
            .collect();
        assert_eq!(got, want);
    }
}
