//! Incremental streaming monitoring with shared window preparation.
//!
//! The paper's §7 argues assertions are cheap enough to "be run … over
//! every model invocation"; keeping that true on a live stream means the
//! hot path must be *incremental* — O(1) amortized work per arriving
//! sample — rather than batch-shaped re-derivation over the whole
//! history. Two costs dominate in practice:
//!
//! 1. **Window preparation.** Several assertions over the same window
//!    often need the same expensive derivation (the video assertions all
//!    need the tracked window; an ECG set needs the segmented prediction
//!    run). Self-contained assertions each re-derive it, multiplying the
//!    dominant cost by the assertion count. The [`Prepare`] trait names
//!    that derivation once; [`crate::AssertionSet::check_all_prepared`]
//!    shares one artifact across every assertion in the set.
//! 2. **Window construction.** A sliding window over a stream only ever
//!    changes at its edges, and describing one never requires copying its
//!    items. [`SlidingSpans`] is the storage-free slider that turns a
//!    one-position-at-a-time stream into the index spans of the same
//!    clamped windows a batch scorer would build from the full sequence —
//!    callers holding the stream as a slice borrow each window in place,
//!    with zero item clones and zero per-window allocation. Callers that
//!    receive *owned* items one at a time use [`SlidingWindows`], which
//!    moves each item once into a contiguous mirror buffer and emits
//!    windows as borrowed slices of it, in O(window) memory.
//!
//! [`StreamMonitor`] composes the two into the deployment-time face of
//! the streaming engine: ingest a sample, prepare once, check every
//! assertion, record to the [`AssertionDb`], fire corrective actions —
//! and emit the same [`SampleReport`]s the batch [`crate::Monitor`]
//! would.
//!
//! # Batch-equivalence guarantee
//!
//! For pure assertions and a deterministic preparer, every path through
//! this module is **bit-for-bit equal** to the batch reference
//! ([`crate::AssertionSet::check_all`] per sample, in order) at any
//! thread count. The engine's property tests enforce this at 1/2/8
//! threads across all deployed scenarios.

use crate::runtime::ThreadPool;
use crate::{AssertionDb, AssertionId, AssertionSet, SampleReport, Severity, SeverityMatrix};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// An expensive per-sample derivation shared by every assertion in a set.
///
/// `prepare` must be a deterministic pure function of the sample: the
/// streaming engine relies on `check_all_prepared(s, &prepare(s))`
/// equalling `check_all(s)` bit-for-bit, and may prepare the same sample
/// on different threads in different runs.
pub trait Prepare<S>: Send + Sync {
    /// The artifact `prepare` derives (a tracked window, segmented
    /// beats, projected boxes, …).
    type Prepared: Send;

    /// Derives the artifact from one sample.
    fn prepare(&self, sample: &S) -> Self::Prepared;
}

/// Boxed preparers prepare by delegation, so a `Box<dyn Prepare<S,
/// Prepared = P>>` (how scenario harnesses hold their preparer) can be
/// passed anywhere a concrete preparer is expected — including inside a
/// [`CountingPrepare`] probe.
impl<S, Pr> Prepare<S> for Box<Pr>
where
    Pr: Prepare<S> + ?Sized,
{
    type Prepared = Pr::Prepared;

    fn prepare(&self, sample: &S) -> Self::Prepared {
        (**self).prepare(sample)
    }
}

/// The trivial preparation: no shared artifact. Lets any plain
/// `AssertionSet<S>` run on the streaming engine unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoPrep;

impl<S> Prepare<S> for NoPrep {
    type Prepared = ();

    fn prepare(&self, _sample: &S) {}
}

/// A closure-backed [`Prepare`] — the `FnAssertion` of preparers.
///
/// # Example
///
/// ```
/// use omg_core::stream::{FnPrepare, Prepare};
///
/// let sum = FnPrepare::new(|xs: &Vec<i32>| xs.iter().sum::<i32>());
/// assert_eq!(sum.prepare(&vec![1, 2, 3]), 6);
/// ```
pub struct FnPrepare<F>(F);

impl<F> FnPrepare<F> {
    /// Wraps a closure as a preparer.
    pub fn new(f: F) -> Self {
        Self(f)
    }
}

impl<S, P, F> Prepare<S> for FnPrepare<F>
where
    F: Fn(&S) -> P + Send + Sync,
    P: Send,
{
    type Prepared = P;

    fn prepare(&self, sample: &S) -> P {
        (self.0)(sample)
    }
}

/// A probe that counts how many times an inner preparer runs — the
/// instrument behind the engine's prepare-once tests ("tracking runs
/// exactly once per window").
pub struct CountingPrepare<Pr> {
    inner: Pr,
    count: Arc<AtomicUsize>,
}

impl<Pr> CountingPrepare<Pr> {
    /// Wraps a preparer; `counter` is incremented on every `prepare`.
    pub fn new(inner: Pr, counter: Arc<AtomicUsize>) -> Self {
        Self {
            inner,
            count: counter,
        }
    }

    /// Number of `prepare` calls so far.
    pub fn count(&self) -> usize {
        self.count.load(Ordering::SeqCst)
    }
}

impl<S, Pr: Prepare<S>> Prepare<S> for CountingPrepare<Pr> {
    type Prepared = Pr::Prepared;

    fn prepare(&self, sample: &S) -> Pr::Prepared {
        self.count.fetch_add(1, Ordering::SeqCst);
        self.inner.prepare(sample)
    }
}

/// One clamped window as a *span of stream positions*, emitted by
/// [`SlidingSpans`]: `[start, end)` in stream coordinates, centered on
/// stream position `index`. Callers that hold the stream as a slice
/// borrow the window as `&stream[span.start..span.end]` — no items are
/// stored, moved, or cloned to describe a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpan {
    /// First stream position in the window (inclusive).
    pub start: usize,
    /// One past the last stream position in the window (exclusive).
    pub end: usize,
    /// The center's stream position (`start <= index < end`).
    pub index: usize,
}

impl WindowSpan {
    /// Index of the center *within* the window (`index - start`).
    pub fn center(&self) -> usize {
        self.index - self.start
    }

    /// Number of positions in the window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span is empty (never, for spans a slider emits —
    /// every window contains at least its center).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The index-emitting slider: pure clamped-window *arithmetic*, no item
/// storage at all.
///
/// Configured with `half` positions of context on each side of a
/// center, it counts stream positions one [`SlidingSpans::push`] at a
/// time and emits, for every position `c`, the span
/// `[max(0, c - half), min(c + half + 1, n))` — exactly the clamped
/// window a batch scorer would build from the full sequence, in center
/// order, with `half` positions of latency, O(1) state, and zero
/// allocation. It is the window engine behind the chunked streaming
/// drivers, whose callers hold the stream as a slice and borrow each
/// window in place; callers that genuinely receive items one at a time
/// wrap it in a [`SlidingWindows`] instead.
///
/// # Example
///
/// ```
/// use omg_core::stream::SlidingSpans;
///
/// let mut sp = SlidingSpans::new(1);
/// assert!(sp.push().is_none()); // center 0 still needs lookahead
/// let s = sp.push().expect("center 0 complete");
/// assert_eq!((s.start, s.end, s.index), (0, 2, 0));
/// let tail: Vec<_> = sp.finish().collect(); // right-edge-clamped tail
/// assert_eq!(tail.len(), 1);
/// assert_eq!((tail[0].start, tail[0].end, tail[0].index), (0, 2, 1));
/// ```
// Deliberately not `Copy`: `finish(self)` must actually consume the
// slider, or pushing a second stream into stale state would compile.
#[derive(Debug, Clone)]
pub struct SlidingSpans {
    half: usize,
    /// Total positions pushed so far.
    pushed: usize,
    /// Next center (stream position) to emit.
    next_center: usize,
}

impl SlidingSpans {
    /// Creates a slider with `half` positions of context on each side.
    pub fn new(half: usize) -> Self {
        Self {
            half,
            pushed: 0,
            next_center: 0,
        }
    }

    /// The context radius.
    pub fn half(&self) -> usize {
        self.half
    }

    /// Total positions pushed so far.
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// Number of spans emitted so far (the next center to emit).
    pub fn emitted(&self) -> usize {
        self.next_center
    }

    /// The span for center `c`, clamped to the positions pushed so far.
    fn span_for(&self, c: usize) -> WindowSpan {
        WindowSpan {
            start: c.saturating_sub(self.half),
            end: (c + self.half + 1).min(self.pushed),
            index: c,
        }
    }

    /// Counts the next stream position; returns the newly completed span,
    /// if any (the window centered `half` positions back, once its
    /// lookahead is in).
    pub fn push(&mut self) -> Option<WindowSpan> {
        self.pushed += 1;
        if self.pushed > self.next_center + self.half {
            let s = self.span_for(self.next_center);
            self.next_center += 1;
            Some(s)
        } else {
            None
        }
    }

    /// Flushes the end of the stream: the spans for the remaining
    /// centers, clamped at the right edge (mirroring the left-edge clamp
    /// the first spans get). Consumes the slider — a finished stream is
    /// over, and a fresh stream needs a fresh slider, so stale-state
    /// windows mixing two streams are unrepresentable:
    ///
    /// ```compile_fail
    /// use omg_core::stream::SlidingSpans;
    ///
    /// let mut sp = SlidingSpans::new(1);
    /// sp.push();
    /// let _ = sp.finish();
    /// sp.push(); // error[E0382]: `finish` consumed the slider
    /// ```
    pub fn finish(self) -> impl Iterator<Item = WindowSpan> {
        (self.next_center..self.pushed).map(move |c| self.span_for(c))
    }
}

/// One window emitted by [`SlidingWindows`]: a **borrowed** slice of the
/// slider's storage, which of its items is the center, and the center's
/// global stream index. The borrow ends at the next `push` — score the
/// window before ingesting more of the stream (which is the only order a
/// stream can arrive in anyway).
#[derive(Debug, PartialEq)]
pub struct Window<'a, T> {
    /// The window's items, in stream order.
    pub items: &'a [T],
    /// Index within `items` of the center — the item the window is about.
    pub center: usize,
    /// The center's index in the overall stream.
    pub index: usize,
}

/// An incremental builder of clamped sliding windows over a stream of
/// *owned* items — for callers that genuinely receive items one at a
/// time and retain no stream slice of their own. Callers that do hold
/// the stream as a slice should use the storage-free [`SlidingSpans`]
/// and borrow windows from their own slice instead.
///
/// Items land in a contiguous mirror buffer (each item is moved in
/// exactly once and never cloned — there is no `T: Clone` bound), so
/// every emitted [`Window`] is a borrowed `&[T]` slice. The buffer
/// holds O(window) live items; dead prefixes are compacted away in
/// amortized O(1) per push. Emission order and clamping are exactly
/// [`SlidingSpans`]'s: for every stream position `c`, the window
/// `[max(0, c - half), min(c + half + 1, n))`, with `half` items of
/// latency.
///
/// # Example
///
/// ```
/// use omg_core::stream::SlidingWindows;
///
/// let mut sw = SlidingWindows::new(1);
/// assert!(sw.push('a').is_none()); // center 0 still needs lookahead
/// let w = sw.push('b').expect("center 0 complete");
/// assert_eq!((w.items, w.center, w.index), (['a', 'b'].as_slice(), 0, 0));
/// let mut tail = sw.finish(); // clamped windows for the last centers
/// let w = tail.next().expect("one tail center");
/// assert_eq!((w.items, w.center, w.index), (['a', 'b'].as_slice(), 1, 1));
/// assert!(tail.next().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindows<T> {
    spans: SlidingSpans,
    /// Contiguous storage for the live suffix of the stream.
    buf: Vec<T>,
    /// Stream index of `buf[0]`.
    base: usize,
}

impl<T> SlidingWindows<T> {
    /// Creates a builder with `half` items of context on each side.
    pub fn new(half: usize) -> Self {
        Self {
            spans: SlidingSpans::new(half),
            buf: Vec::with_capacity(2 * (2 * half + 1)),
            base: 0,
        }
    }

    /// The context radius.
    pub fn half(&self) -> usize {
        self.spans.half()
    }

    /// Total items pushed so far.
    pub fn pushed(&self) -> usize {
        self.spans.pushed()
    }

    /// Borrows the window a span describes from the mirror buffer.
    fn window(&self, span: WindowSpan) -> Window<'_, T> {
        debug_assert!(span.start >= self.base, "window start was compacted away");
        // PANIC: the slider compacts only positions no emitted span can
        // still reference, so span bounds stay inside the mirror buffer.
        Window {
            items: &self.buf[span.start - self.base..span.end - self.base],
            center: span.center(),
            index: span.index,
        }
    }

    /// Drops items no current or future window can reach, once enough
    /// have died to amortize the move of the live suffix to the front.
    fn compact(&mut self) {
        let window = 2 * self.spans.half() + 1;
        let dead = self
            .spans
            .emitted()
            .saturating_sub(self.spans.half())
            .saturating_sub(self.base);
        if dead >= window {
            // `drain` drops the dead prefix and *moves* the live suffix
            // down — no clones. Each compaction moves at most window + 1
            // items after at least `window` pushes: amortized O(1).
            self.buf.drain(..dead);
            self.base += dead;
        }
    }

    /// Ingests the next item; returns the newly completed window, if any
    /// (the window centered `half` items back, once its lookahead is in),
    /// borrowed from the slider's storage.
    pub fn push(&mut self, item: T) -> Option<Window<'_, T>> {
        self.compact();
        self.buf.push(item);
        let span = self.spans.push()?;
        Some(self.window(span))
    }

    /// Flushes the end of the stream: the windows for the remaining
    /// centers, clamped at the right edge (mirroring the left-edge clamp
    /// the first windows get), as a lending iterator over the buffered
    /// tail. Consumes the slider — a finished stream is over, and a
    /// fresh stream needs a fresh slider, so a stale ring mixing two
    /// streams' items is unrepresentable (it used to be a silent bug):
    ///
    /// ```compile_fail
    /// use omg_core::stream::SlidingWindows;
    ///
    /// let mut sw = SlidingWindows::new(1);
    /// sw.push('a');
    /// let _ = sw.finish();
    /// sw.push('b'); // error[E0382]: `finish` consumed the slider
    /// ```
    pub fn finish(self) -> TailWindows<T> {
        let tail: Vec<WindowSpan> = self.spans.finish().collect();
        TailWindows {
            buf: self.buf,
            base: self.base,
            tail: tail.into_iter(),
        }
    }
}

/// The right-edge-clamped tail windows of a finished [`SlidingWindows`]:
/// a lending iterator (each [`TailWindows::next`] borrows the owned
/// buffer), since the tail windows overlap the same storage.
#[derive(Debug)]
pub struct TailWindows<T> {
    buf: Vec<T>,
    base: usize,
    tail: std::vec::IntoIter<WindowSpan>,
}

impl<T> TailWindows<T> {
    /// The next tail window, borrowed from the finished slider's buffer.
    #[allow(clippy::should_implement_trait)] // lending: Item borrows self
    pub fn next(&mut self) -> Option<Window<'_, T>> {
        let span = self.tail.next()?;
        // PANIC: same compaction invariant as Slider::window.
        Some(Window {
            items: &self.buf[span.start - self.base..span.end - self.base],
            center: span.center(),
            index: span.index,
        })
    }

    /// Number of tail windows remaining.
    pub fn len(&self) -> usize {
        self.tail.len()
    }

    /// Whether all tail windows have been yielded.
    pub fn is_empty(&self) -> bool {
        self.tail.len() == 0
    }
}

/// Fills `n` severity rows (plus one auxiliary `f64` per row) across the
/// pool's workers, merging into one contiguous [`SeverityMatrix`] and
/// auxiliary vector **in index order**.
///
/// `fill(i, row)` must refill `row` with index `i`'s dense severity
/// values and return its auxiliary value (an uncertainty, typically);
/// each worker reuses one row buffer across its whole chunk, so the
/// single-thread path runs allocation-free over a flat buffer and the
/// parallel path merges chunk-local matrices by disjoint range-copy
/// ([`SeverityMatrix::append`]) — no `Vec<Vec<_>>` stitching. For a pure
/// `fill` the result is bit-for-bit identical at any thread count.
///
/// This is the columnar scoring core shared by [`score_batch`] and the
/// scenario batch drivers.
pub fn score_rows_chunked<F>(
    n: usize,
    width: usize,
    pool: &ThreadPool,
    fill: F,
) -> (SeverityMatrix, Vec<f64>)
where
    F: Fn(usize, &mut Vec<f64>) -> f64 + Sync,
{
    let fill_range = |lo: usize, hi: usize| {
        let mut matrix = SeverityMatrix::with_capacity(hi - lo, width);
        let mut aux = Vec::with_capacity(hi - lo);
        let mut row = Vec::with_capacity(width);
        for i in lo..hi {
            aux.push(fill(i, &mut row));
            matrix.push_row(&row);
        }
        (matrix, aux)
    };
    let threads = pool.fanout();
    if threads == 1 || n < 2 {
        return fill_range(0, n);
    }
    let chunk = n.div_ceil(threads * 4).max(1);
    let parts = pool.map_indexed(n.div_ceil(chunk), |k| {
        fill_range(k * chunk, ((k + 1) * chunk).min(n))
    });
    let mut matrix = SeverityMatrix::with_capacity(n, width);
    let mut aux = Vec::with_capacity(n);
    for (part_matrix, part_aux) in &parts {
        matrix.append(part_matrix);
        aux.extend_from_slice(part_aux);
    }
    (matrix, aux)
}

/// Scores every sample of a batch across the pool's workers — prepare
/// once per sample, then every assertion via the set's prepared path —
/// into a columnar [`SeverityMatrix`]: row `i` is sample `i`'s dense
/// severity vector in assertion-id order, merged **in sample order**.
///
/// This is the shared scoring core of [`crate::Monitor::process_batch`]
/// (with [`NoPrep`]) and [`StreamMonitor::ingest_batch`]; for pure
/// assertions and a deterministic preparer it is bit-for-bit equal to
/// checking each sample sequentially, at any thread count.
pub fn score_batch<S, P>(
    set: &AssertionSet<S, P>,
    preparer: &(dyn Prepare<S, Prepared = P> + '_),
    samples: &[S],
    pool: &ThreadPool,
) -> SeverityMatrix
where
    S: Sync + 'static,
    P: Send,
{
    score_rows_chunked(samples.len(), set.len(), pool, |i, row| {
        let prep = preparer.prepare(&samples[i]);
        set.check_all_prepared_values(&samples[i], &prep, row);
        0.0
    })
    .0
}

/// An incremental scorer over a stream of indexed items: ingesting item
/// `i` may complete (and score) the window centered `half` items back;
/// [`StreamScorer::finish`] flushes the right-edge-clamped tail.
///
/// Implementations typically wrap a [`SlidingWindows`] over borrowed
/// stream data plus a prepared assertion set; see
/// [`score_stream_chunked`] for running one across a thread pool.
pub trait StreamScorer {
    /// The per-center report (severities, uncertainty, …).
    type Output;

    /// Ingests stream item `index`; returns the report for the newly
    /// completed center, if any.
    fn push(&mut self, index: usize) -> Option<Self::Output>;

    /// Flushes reports for the remaining centers at end-of-stream.
    fn finish(self) -> Vec<Self::Output>;
}

/// Runs an incremental [`StreamScorer`] over a length-`n` stream of
/// sliding windows (context radius `half`) across the pool's workers.
///
/// The stream is split into contiguous chunks of centers; each worker
/// streams its chunk with `half` items of margin re-fed on each side, so
/// every center's window is exactly the window a single scorer — or a
/// batch scorer — would build, and the merged output (in center order)
/// is **identical at any thread count**. Re-feeding the margin costs
/// `2 * half` items per chunk, amortized to nothing over chunk sizes.
///
/// `make_scorer` receives the global index of the first item its chunk
/// will be fed (its ring buffer's local index 0), so scorers can map
/// window positions back to global stream indices.
///
/// # Panics
///
/// Panics if a chunk's scorer does not emit exactly one report per
/// center (a `StreamScorer` contract violation).
pub fn score_stream_chunked<Sc, F>(
    n: usize,
    half: usize,
    pool: &ThreadPool,
    make_scorer: F,
) -> Vec<Sc::Output>
where
    Sc: StreamScorer,
    Sc::Output: Send,
    F: Fn(usize) -> Sc + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    // One *effective* worker needs no chunking: a single pure stream,
    // zero re-fed margin, exactly one preparation per window. Parallel
    // runs use the pool's self-scheduler geometry (~4 chunks per
    // worker, capped at the machine's cores) to balance load without
    // shredding window-overlap locality.
    let threads = pool.fanout();
    let chunk = if threads == 1 {
        n
    } else {
        n.div_ceil(threads * 4).max(1)
    };
    let n_chunks = n.div_ceil(chunk);
    pool.map_indexed(n_chunks, |k| {
        let c0 = k * chunk;
        let c1 = ((k + 1) * chunk).min(n);
        let feed_start = c0.saturating_sub(half);
        let feed_end = (c1 + half).min(n);
        // The margin's centers re-stream but belong to neighbouring
        // chunks: drop the first `skip` emissions and stop at `want`.
        let skip = c0 - feed_start;
        let want = c1 - c0;
        let mut scorer = make_scorer(feed_start);
        let mut emitted = 0usize;
        let mut out = Vec::with_capacity(want);
        for i in feed_start..feed_end {
            if let Some(r) = scorer.push(i) {
                if emitted >= skip && out.len() < want {
                    out.push(r);
                }
                emitted += 1;
            }
        }
        if out.len() < want {
            for r in scorer.finish() {
                if emitted >= skip && out.len() < want {
                    out.push(r);
                }
                emitted += 1;
            }
        }
        assert_eq!(out.len(), want, "chunk must emit one report per center");
        out
    })
    .into_iter()
    .flatten()
    .collect()
}

/// An incremental scorer that emits **columnar severity rows** instead
/// of owned per-center values — the allocation-free counterpart of
/// [`StreamScorer`] behind [`score_stream_rows`].
///
/// A completed center's severities land in the scorer's reusable row
/// buffer ([`RowStreamScorer::row`]) and its uncertainty is the `push`
/// return value; the driver copies the row straight into a
/// [`SeverityMatrix`]. [`RowStreamScorer::push_skipped`] advances the
/// window state *without scoring* — the driver uses it for the re-fed
/// left margin of a parallel chunk, whose completed centers belong to
/// the neighbouring chunk, so margin windows cost window bookkeeping
/// only, never a preparation or an assertion check.
pub trait RowStreamScorer {
    /// Ingests stream item `index`; if the window centered `half` items
    /// back completed, scores it — leaving its severity row in
    /// [`RowStreamScorer::row`] — and returns its uncertainty.
    fn push(&mut self, index: usize) -> Option<f64>;

    /// Ingests stream item `index` **without scoring**: window state
    /// advances exactly as in `push`, but any completed center is
    /// discarded unscored. Returns whether a center completed.
    fn push_skipped(&mut self, index: usize) -> bool;

    /// The severity row of the most recently scored center (valid after
    /// a `push` or `flush` that returned `Some`).
    fn row(&self) -> &[f64];

    /// At end-of-stream, scores the next right-edge-clamped tail center
    /// — leaving its severity row in [`RowStreamScorer::row`] — and
    /// returns its uncertainty; `None` once the tail is exhausted. No
    /// `push` may follow the first `flush`.
    fn flush(&mut self) -> Option<f64>;

    /// Discards the next tail center **without scoring** (the tail
    /// counterpart of [`RowStreamScorer::push_skipped`]); returns
    /// whether a center remained.
    fn flush_skipped(&mut self) -> bool;
}

/// Runs an incremental [`RowStreamScorer`] over a length-`n` stream of
/// sliding windows (context radius `half`, `width` assertions) across
/// the pool's workers, collecting severities columnar: a
/// [`SeverityMatrix`] row plus one uncertainty per center, **in center
/// order**, bit-for-bit identical at any thread count.
///
/// Chunking matches [`score_stream_chunked`]: one worker streams the
/// whole thing as a single pure pass; parallel runs split centers into
/// contiguous chunks with `half` items of margin re-fed on each side.
/// The margins go through [`RowStreamScorer::push_skipped`], so a
/// margin center never pays preparation or assertion checks, and each
/// chunk stops feeding as soon as its own centers are all scored.
/// Chunk-local matrices merge by contiguous range-copy.
///
/// # Panics
///
/// Panics if a chunk's scorer does not emit exactly one row per center
/// (a [`RowStreamScorer`] contract violation).
pub fn score_stream_rows<Sc, F>(
    n: usize,
    half: usize,
    width: usize,
    pool: &ThreadPool,
    make_scorer: F,
) -> (SeverityMatrix, Vec<f64>)
where
    Sc: RowStreamScorer,
    F: Fn(usize) -> Sc + Sync,
{
    if n == 0 {
        return (SeverityMatrix::with_capacity(0, width), Vec::new());
    }
    let threads = pool.fanout();
    let chunk = if threads == 1 {
        n
    } else {
        n.div_ceil(threads * 4).max(1)
    };
    let score_chunk = |k: usize| {
        let c0 = k * chunk;
        let c1 = ((k + 1) * chunk).min(n);
        let feed_start = c0.saturating_sub(half);
        let feed_end = (c1 + half).min(n);
        // The re-fed margins' centers belong to neighbouring chunks:
        // skip the first `skip` completions unscored, collect `want`,
        // then stop feeding — the right margin is never even pushed.
        let skip = c0 - feed_start;
        let want = c1 - c0;
        let mut scorer = make_scorer(feed_start);
        let mut matrix = SeverityMatrix::with_capacity(want, width);
        let mut unc = Vec::with_capacity(want);
        let mut skipped = 0usize;
        for i in feed_start..feed_end {
            if matrix.len() == want {
                break;
            }
            if skipped < skip {
                skipped += usize::from(scorer.push_skipped(i));
            } else if let Some(u) = scorer.push(i) {
                matrix.push_row(scorer.row());
                unc.push(u);
            }
        }
        // End-of-stream tail: the driver *pulls* exactly the centers it
        // needs, so right-margin tail centers are never scored at all.
        while matrix.len() < want {
            if skipped < skip {
                assert!(scorer.flush_skipped(), "chunk must emit one row per center");
                skipped += 1;
            } else {
                // PANIC: the loop bound is the accepted-center count,
                // and flush yields exactly one row per accepted center.
                let u = scorer.flush().expect("chunk must emit one row per center");
                matrix.push_row(scorer.row());
                unc.push(u);
            }
        }
        (matrix, unc)
    };
    if threads == 1 {
        return score_chunk(0);
    }
    let parts = pool.map_indexed(n.div_ceil(chunk), score_chunk);
    let mut matrix = SeverityMatrix::with_capacity(n, width);
    let mut unc = Vec::with_capacity(n);
    for (part_matrix, part_unc) in &parts {
        matrix.append(part_matrix);
        unc.extend_from_slice(part_unc);
    }
    (matrix, unc)
}

/// A corrective action hook (see [`crate::Monitor::on_severity`]).
type ActionHook<S> = Box<dyn FnMut(&S, &SampleReport) + Send>;

/// The streaming runtime monitor: the prepare-once counterpart of
/// [`crate::Monitor`].
///
/// Where `Monitor` runs self-contained assertions (each re-deriving
/// whatever it needs), a `StreamMonitor` owns the set's [`Prepare`]r and
/// runs the expensive per-sample derivation **exactly once per sample**,
/// sharing the artifact across every assertion via
/// [`AssertionSet::check_all_prepared`]. Everything else matches the
/// batch monitor: outcomes append to the [`AssertionDb`], corrective
/// actions fire in sample order, and the emitted [`SampleReport`]s are
/// bit-for-bit what `Monitor::process` would produce on the same stream.
///
/// # Example
///
/// ```
/// use omg_core::stream::{FnPrepare, StreamMonitor};
/// use omg_core::{AssertionSet, Severity};
///
/// // Shared preparation: the (expensive, imagine) sum of the sample.
/// let mut set: AssertionSet<Vec<i64>, i64> = AssertionSet::new();
/// set.add_prepared(
///     omg_core::FnAssertion::new("negative-sum", |xs: &Vec<i64>| {
///         Severity::from_bool(xs.iter().sum::<i64>() < 0)
///     }),
///     |_, &sum| Severity::from_bool(sum < 0),
/// );
/// let mut m = StreamMonitor::new(set, FnPrepare::new(|xs: &Vec<i64>| xs.iter().sum()));
/// assert!(m.ingest(&vec![-2, 1]).any_fired());
/// assert!(!m.ingest(&vec![2, 1]).any_fired());
/// assert_eq!(m.samples_processed(), 2);
/// assert_eq!(m.prepare_count(), 2);
/// ```
pub struct StreamMonitor<S, P = ()> {
    assertions: AssertionSet<S, P>,
    preparer: Box<dyn Prepare<S, Prepared = P>>,
    db: AssertionDb,
    next_sample: usize,
    prepares: usize,
    actions: Vec<(Severity, ActionHook<S>)>,
    /// Optional retention cap: after every commit the database keeps at
    /// most this many recent sample rows (see
    /// [`AssertionDb::retain_recent`]). `None` retains everything.
    retention: Option<usize>,
}

impl<S: 'static, P: Send + 'static> StreamMonitor<S, P> {
    /// Creates a streaming monitor around an assertion set and the
    /// preparer producing its shared artifact.
    pub fn new<Pr>(assertions: AssertionSet<S, P>, preparer: Pr) -> Self
    where
        Pr: Prepare<S, Prepared = P> + 'static,
    {
        Self {
            assertions,
            preparer: Box::new(preparer),
            db: AssertionDb::new(),
            next_sample: 0,
            prepares: 0,
            actions: Vec::new(),
            retention: None,
        }
    }

    /// Caps the database at the `keep` most recent sample rows: after
    /// every ingest, older rows are evicted (lifetime fire counters
    /// survive — see [`AssertionDb`]'s retention docs). This is what
    /// keeps a long-lived monitor's memory flat under unbounded traffic;
    /// reports and corrective actions are unaffected.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is zero.
    #[must_use]
    pub fn with_retention(mut self, keep: usize) -> Self {
        assert!(keep > 0, "retention cap must keep at least one sample");
        self.retention = Some(keep);
        self
    }

    /// The registered assertions.
    pub fn assertions(&self) -> &AssertionSet<S, P> {
        &self.assertions
    }

    /// Mutable access for registering assertions.
    pub fn assertions_mut(&mut self) -> &mut AssertionSet<S, P> {
        &mut self.assertions
    }

    /// The assertion database accumulated so far.
    pub fn db(&self) -> &AssertionDb {
        &self.db
    }

    /// Number of samples ingested.
    pub fn samples_processed(&self) -> usize {
        self.next_sample
    }

    /// Number of preparation runs so far — the prepare-once invariant
    /// makes this exactly [`StreamMonitor::samples_processed`].
    pub fn prepare_count(&self) -> usize {
        self.prepares
    }

    /// Registers a corrective action invoked whenever a sample's maximum
    /// severity is at least `threshold` (see
    /// [`crate::Monitor::on_severity`]).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` does not fire.
    pub fn on_severity<F>(&mut self, threshold: Severity, action: F)
    where
        F: FnMut(&S, &SampleReport) + Send + 'static,
    {
        assert!(
            threshold.fired(),
            "corrective-action threshold must be positive"
        );
        self.actions.push((threshold, Box::new(action)));
    }

    /// Records a scored sample and fires corrective actions.
    fn commit(&mut self, sample: &S, outcomes: Vec<(AssertionId, Severity)>) -> SampleReport {
        let report = SampleReport {
            sample: self.next_sample,
            outcomes,
        };
        self.db.record_sample(report.sample, &report.outcomes);
        self.next_sample += 1;
        if let Some(keep) = self.retention {
            self.db.retain_recent(keep);
        }
        let max = report.max_severity();
        for (threshold, action) in &mut self.actions {
            if max >= *threshold {
                action(sample, &report);
            }
        }
        report
    }

    /// Ingests one sample: prepares once, checks every assertion against
    /// the shared artifact, records the outcomes, and fires corrective
    /// actions.
    pub fn ingest(&mut self, sample: &S) -> SampleReport {
        let prep = self.preparer.prepare(sample);
        self.prepares += 1;
        let outcomes = self.assertions.check_all_prepared(sample, &prep);
        self.commit(sample, outcomes)
    }

    /// Ingests a batch: scoring (one preparation + all checks per
    /// sample) fans out across the pool's workers, then reports merge,
    /// record, and fire actions in sample order — bit-for-bit what
    /// calling [`StreamMonitor::ingest`] per sample would produce.
    pub fn ingest_batch(&mut self, samples: &[S], pool: &ThreadPool) -> Vec<SampleReport>
    where
        S: Sync,
    {
        let matrix = score_batch(&self.assertions, self.preparer.as_ref(), samples, pool);
        self.prepares += samples.len();
        let first = self.next_sample;
        self.db.record_matrix(first, &matrix);
        self.next_sample += samples.len();
        if let Some(keep) = self.retention {
            self.db.retain_recent(keep);
        }
        let mut reports = Vec::with_capacity(samples.len());
        for (i, row) in matrix.iter_rows().enumerate() {
            // Severity::new round-trips each raw value exactly, so the
            // reconstructed outcome rows are bit-for-bit what the
            // sequential per-sample path produces.
            let outcomes: Vec<(AssertionId, Severity)> = row
                .iter()
                .enumerate()
                .map(|(m, &v)| (AssertionId(m), Severity::new(v)))
                .collect();
            let report = SampleReport {
                sample: first + i,
                outcomes,
            };
            let max = report.max_severity();
            for (threshold, action) in &mut self.actions {
                if max >= *threshold {
                    action(&samples[i], &report);
                }
            }
            reports.push(report);
        }
        reports
    }
}

impl<S: 'static, P: Send + 'static> std::fmt::Debug for StreamMonitor<S, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamMonitor")
            .field("assertions", &self.assertions.names())
            .field("samples_processed", &self.next_sample)
            .field("prepares", &self.prepares)
            .field("actions", &self.actions.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Monitor;

    /// A set whose assertions share a (counted) "expensive" derivation:
    /// the sum of the sample.
    fn prepared_set() -> AssertionSet<Vec<i64>, i64> {
        let mut set: AssertionSet<Vec<i64>, i64> = AssertionSet::new();
        set.add_prepared(
            crate::FnAssertion::new("negative-sum", |xs: &Vec<i64>| {
                Severity::from_bool(xs.iter().sum::<i64>() < 0)
            }),
            |_, &sum: &i64| Severity::from_bool(sum < 0),
        );
        set.add_prepared(
            crate::FnAssertion::new("huge-sum", |xs: &Vec<i64>| {
                Severity::new(xs.iter().sum::<i64>().unsigned_abs() as f64 / 100.0)
            }),
            |_, &sum: &i64| Severity::new(sum.unsigned_abs() as f64 / 100.0),
        );
        // A prep-oblivious assertion mixes in via the fallback path.
        set.add_fn("empty", |xs: &Vec<i64>| Severity::from_bool(xs.is_empty()));
        set
    }

    fn plain_set() -> AssertionSet<Vec<i64>> {
        let mut set = AssertionSet::new();
        set.add_fn("negative-sum", |xs: &Vec<i64>| {
            Severity::from_bool(xs.iter().sum::<i64>() < 0)
        });
        set.add_fn("huge-sum", |xs: &Vec<i64>| {
            Severity::new(xs.iter().sum::<i64>().unsigned_abs() as f64 / 100.0)
        });
        set.add_fn("empty", |xs: &Vec<i64>| Severity::from_bool(xs.is_empty()));
        set
    }

    fn samples() -> Vec<Vec<i64>> {
        vec![vec![-5, 2], vec![], vec![300, 7], vec![1], vec![-900]]
    }

    /// Drains a `SlidingWindows` run over `items`, materializing every
    /// emitted borrowed window as `(owned items, center, index)`.
    fn collect_windows<T: Clone>(half: usize, items: &[T]) -> Vec<(Vec<T>, usize, usize)> {
        let mut sw = SlidingWindows::new(half);
        let mut got = Vec::new();
        for x in items {
            if let Some(w) = sw.push(x.clone()) {
                got.push((w.items.to_vec(), w.center, w.index));
            }
        }
        let mut tail = sw.finish();
        while let Some(w) = tail.next() {
            got.push((w.items.to_vec(), w.center, w.index));
        }
        got
    }

    /// The batch reference: the clamped window of every center, built
    /// from the full sequence — what both sliders must reproduce.
    fn batch_windows<T: Clone>(half: usize, items: &[T]) -> Vec<(Vec<T>, usize, usize)> {
        let n = items.len();
        (0..n)
            .map(|c| {
                let lo = c.saturating_sub(half);
                let hi = (c + half + 1).min(n);
                (items[lo..hi].to_vec(), c - lo, c)
            })
            .collect()
    }

    #[test]
    fn sliding_windows_match_batch_windows() {
        // Deterministic clamped-edge coverage: half = 0 (degenerate
        // windows), n = 0/1, and every n < 2 * half + 1 (streams shorter
        // than one full window, where both edges clamp at once).
        for half in [0usize, 1, 2, 3] {
            for n in [0usize, 1, 2, 5, 9] {
                let items: Vec<usize> = (0..n).collect();
                assert_eq!(
                    collect_windows(half, &items),
                    batch_windows(half, &items),
                    "half={half} n={n}"
                );
            }
        }
    }

    proptest::proptest! {
        /// The borrowed-window slider equals the owned batch-window
        /// semantics for arbitrary (half, n) — including the clamped
        /// edges the ranges force (half = 0, n < 2 * half + 1).
        #[test]
        fn sliding_windows_equal_batch_windows_prop(half in 0usize..5, n in 0usize..48) {
            let items: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 23 - 11).collect();
            proptest::prop_assert_eq!(collect_windows(half, &items), batch_windows(half, &items));
        }

        /// The storage-free span slider describes exactly the same
        /// windows, as index ranges.
        #[test]
        fn sliding_spans_equal_batch_windows_prop(half in 0usize..5, n in 0usize..48) {
            let items: Vec<u32> = (0..n as u32).collect();
            let mut sp = SlidingSpans::new(half);
            let mut got = Vec::new();
            for _ in 0..n {
                if let Some(s) = sp.push() {
                    got.push((items[s.start..s.end].to_vec(), s.center(), s.index));
                }
            }
            got.extend(sp.finish().map(|s| (items[s.start..s.end].to_vec(), s.center(), s.index)));
            proptest::prop_assert_eq!(got, batch_windows(half, &items));
        }
    }

    #[test]
    fn sliding_windows_latency_is_half() {
        let mut sw = SlidingWindows::new(2);
        assert_eq!(sw.half(), 2);
        assert!(sw.push(0).is_none());
        assert!(sw.push(1).is_none());
        let w = sw.push(2).expect("center 0 ready after its lookahead");
        assert_eq!(w.index, 0);
        assert_eq!(sw.pushed(), 3);
    }

    /// A move-only item type: compiling at all proves the slider has no
    /// `T: Clone` bound; the long stream exercises mirror-buffer
    /// compaction (each item is moved in once and windows stay correct).
    #[test]
    fn sliding_windows_take_move_only_items_and_compact() {
        #[derive(Debug, PartialEq)]
        struct NoClone(usize);

        let half = 2;
        let n = 100;
        let mut sw = SlidingWindows::new(half);
        let mut centers = Vec::new();
        for i in 0..n {
            if let Some(w) = sw.push(NoClone(i)) {
                assert!(w.items.len() <= 2 * half + 1);
                assert_eq!(w.items[w.center], NoClone(w.index));
                assert_eq!(w.items[0], NoClone(w.index.saturating_sub(half)));
                centers.push(w.index);
            }
        }
        let mut tail = sw.finish();
        assert_eq!(tail.len(), half);
        assert!(!tail.is_empty());
        while let Some(w) = tail.next() {
            assert_eq!(w.items[w.center], NoClone(w.index));
            centers.push(w.index);
        }
        assert_eq!(centers, (0..n).collect::<Vec<_>>());
    }

    /// Regression (old bug): `finish` used to take `&mut self` and leave
    /// a stale ring behind, so pushing a *second* stream silently emitted
    /// windows mixing both streams' items. `finish(self)` now consumes
    /// the slider — reuse is a compile error — and a fresh slider starts
    /// from a genuinely clean state.
    #[test]
    fn finish_consumes_the_slider_and_fresh_streams_start_clean() {
        let mut first = SlidingWindows::new(1);
        assert!(first.push('x').is_none());
        assert_eq!(first.push('y').unwrap().items, &['x', 'y']);
        let mut tail = first.finish();
        assert_eq!(tail.next().unwrap().items, &['x', 'y']);
        // `first.push('z')` here would not compile: `finish` moved it.

        let mut second = SlidingWindows::new(1);
        let w = second.push('a');
        assert!(w.is_none(), "a fresh stream has no stale lookahead");
        let w = second.push('b').expect("center 0 of the second stream");
        assert_eq!(w.items, &['a', 'b'], "no first-stream items leak in");
        assert_eq!(w.index, 0, "stream indices restart at 0");
    }

    #[test]
    fn window_span_geometry() {
        let mut sp = SlidingSpans::new(1);
        sp.push();
        let s = sp.push().expect("center 0");
        assert_eq!((s.len(), s.center(), s.is_empty()), (2, 0, false));
        assert_eq!(sp.emitted(), 1);
        assert_eq!(sp.pushed(), 2);
    }

    #[test]
    fn check_all_prepared_matches_check_all() {
        let set = prepared_set();
        for s in samples() {
            let prep: i64 = s.iter().sum();
            assert_eq!(set.check_all_prepared(&s, &prep), set.check_all(&s));
        }
    }

    #[test]
    fn stream_monitor_matches_batch_monitor() {
        let samples = samples();
        let mut reference = Monitor::with_assertions(plain_set());
        let want: Vec<_> = samples.iter().map(|s| reference.process(s)).collect();

        let mut stream = StreamMonitor::new(
            prepared_set(),
            FnPrepare::new(|xs: &Vec<i64>| xs.iter().sum::<i64>()),
        );
        let got: Vec<_> = samples.iter().map(|s| stream.ingest(s)).collect();
        assert_eq!(got, want);
        assert_eq!(stream.db(), reference.db());
        assert_eq!(stream.prepare_count(), samples.len());

        for threads in [1, 2, 8] {
            let mut batch = StreamMonitor::new(
                prepared_set(),
                FnPrepare::new(|xs: &Vec<i64>| xs.iter().sum::<i64>()),
            );
            let reports = batch.ingest_batch(&samples, &ThreadPool::exact(threads));
            assert_eq!(reports, want, "threads={threads}");
            assert_eq!(batch.db(), reference.db(), "threads={threads}");
            assert_eq!(batch.prepare_count(), samples.len());
        }
    }

    #[test]
    fn counting_prepare_counts_once_per_sample() {
        let counter = Arc::new(AtomicUsize::new(0));
        let probe = CountingPrepare::new(
            FnPrepare::new(|xs: &Vec<i64>| xs.iter().sum::<i64>()),
            counter.clone(),
        );
        let mut m = StreamMonitor::new(prepared_set(), probe);
        let samples = samples();
        m.ingest_batch(&samples, &ThreadPool::exact(4));
        m.ingest(&samples[0]);
        assert_eq!(counter.load(Ordering::SeqCst), samples.len() + 1);
    }

    #[test]
    fn stream_monitor_fires_actions_in_sample_order() {
        let fired = Arc::new(std::sync::Mutex::new(Vec::new()));
        let fired2 = fired.clone();
        let mut m = StreamMonitor::new(
            prepared_set(),
            FnPrepare::new(|xs: &Vec<i64>| xs.iter().sum::<i64>()),
        );
        m.on_severity(Severity::new(1.5), move |_, r: &SampleReport| {
            fired2.lock().unwrap().push(r.sample);
        });
        m.ingest_batch(&samples(), &ThreadPool::exact(4));
        assert_eq!(*fired.lock().unwrap(), vec![2, 4]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn abstain_threshold_rejected() {
        StreamMonitor::new(prepared_set(), NoPrep2()).on_severity(Severity::ABSTAIN, |_, _| {});
    }

    #[test]
    fn retention_caps_resident_db_without_changing_reports() {
        let prep = || FnPrepare::new(|xs: &Vec<i64>| xs.iter().sum::<i64>());
        let mut unbounded = StreamMonitor::new(prepared_set(), prep());
        let mut capped = StreamMonitor::new(prepared_set(), prep()).with_retention(2);
        let stream: Vec<Vec<i64>> = (0..20).map(|i| vec![i - 10, 3]).collect();
        for sample in &stream {
            assert_eq!(capped.ingest(sample), unbounded.ingest(sample));
        }
        assert!(
            capped.db().len() <= 2 * capped.assertions().len(),
            "resident rows exceed the cap: {}",
            capped.db().len()
        );
        assert_eq!(capped.db().evicted_before(), 18);
        // Lifetime statistics still cover the whole stream.
        assert_eq!(capped.db().lifetime_len(), unbounded.db().len());
        assert_eq!(
            capped.db().lifetime_fire_counts(),
            unbounded.db().fire_counts()
        );
        // The batch path applies the same cap.
        let mut batch = StreamMonitor::new(prepared_set(), prep()).with_retention(2);
        batch.ingest_batch(&stream, &ThreadPool::exact(4));
        assert_eq!(batch.db().evicted_before(), 18);
        assert_eq!(batch.db().lifetime_len(), unbounded.db().len());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_retention_rejected() {
        let _ = StreamMonitor::new(prepared_set(), NoPrep2()).with_retention(0);
    }

    /// NoPrep over a prepared set needs a preparer with `Prepared = i64`;
    /// a tiny stub keeps the panic test honest.
    struct NoPrep2();
    impl Prepare<Vec<i64>> for NoPrep2 {
        type Prepared = i64;
        fn prepare(&self, _s: &Vec<i64>) -> i64 {
            0
        }
    }

    #[test]
    fn no_prep_runs_plain_sets_on_the_stream_engine() {
        let mut m = StreamMonitor::new(plain_set(), NoPrep);
        let r = m.ingest(&vec![-3]);
        assert!(r.fired(AssertionId(0)));
        assert!(format!("{m:?}").contains("negative-sum"));
    }

    /// A toy incremental scorer: the sum of each clamped window, borrowed
    /// straight from the shared data slice via an index-emitting slider —
    /// no item is ever copied. `offset` maps the slider's local spans
    /// back to global stream indices.
    struct SumScorer<'a> {
        data: &'a [i64],
        offset: usize,
        spans: SlidingSpans,
    }

    impl SumScorer<'_> {
        fn score(&self, s: WindowSpan) -> (usize, i64) {
            let window = &self.data[self.offset + s.start..self.offset + s.end];
            (self.offset + s.index, window.iter().sum())
        }
    }

    impl StreamScorer for SumScorer<'_> {
        type Output = (usize, i64);

        fn push(&mut self, index: usize) -> Option<(usize, i64)> {
            debug_assert_eq!(index, self.offset + self.spans.pushed());
            self.spans.push().map(|s| self.score(s))
        }

        fn finish(mut self) -> Vec<(usize, i64)> {
            // Swap the slider out so `self` stays borrowable for `score`
            // (`finish` consumes the slider by design).
            let spans = std::mem::replace(&mut self.spans, SlidingSpans::new(0));
            spans.finish().map(|s| self.score(s)).collect()
        }
    }

    #[test]
    fn chunked_stream_scoring_matches_batch_windows() {
        let data: Vec<i64> = (0..97).map(|i| (i * 31 % 17) - 8).collect();
        let n = data.len();
        for half in [0usize, 1, 2, 5] {
            // Batch reference: clamped window sums from the full slice.
            let want: Vec<(usize, i64)> = (0..n)
                .map(|c| {
                    let lo = c.saturating_sub(half);
                    let hi = (c + half + 1).min(n);
                    (c, data[lo..hi].iter().sum())
                })
                .collect();
            for threads in [1, 2, 8] {
                let got = score_stream_chunked(n, half, &ThreadPool::exact(threads), |offset| {
                    SumScorer {
                        data: &data,
                        offset,
                        spans: SlidingSpans::new(half),
                    }
                });
                assert_eq!(got, want, "half={half} threads={threads}");
            }
        }
        let empty = score_stream_chunked(0, 2, &ThreadPool::exact(4), |offset| SumScorer {
            data: &data,
            offset,
            spans: SlidingSpans::new(2),
        });
        assert!(empty.is_empty());
    }

    #[test]
    fn score_batch_is_thread_count_invariant() {
        let set = prepared_set();
        let preparer = FnPrepare::new(|xs: &Vec<i64>| xs.iter().sum::<i64>());
        let samples = samples();
        let want = score_batch(&set, &preparer, &samples, &ThreadPool::sequential());
        assert_eq!(want.len(), samples.len());
        assert_eq!(want.width(), set.len());
        for threads in [2, 8] {
            assert_eq!(
                score_batch(&set, &preparer, &samples, &ThreadPool::exact(threads)),
                want,
                "threads={threads}"
            );
        }
        // The matrix rows are exactly the per-sample prepared checks.
        for (i, s) in samples.iter().enumerate() {
            let prep: i64 = s.iter().sum();
            let row: Vec<f64> = set
                .check_all_prepared(s, &prep)
                .into_iter()
                .map(|(_, sev)| sev.value())
                .collect();
            assert_eq!(want.row(i), row.as_slice());
        }
    }

    #[test]
    fn score_rows_chunked_is_thread_count_invariant() {
        let fill = |i: usize, row: &mut Vec<f64>| {
            row.clear();
            row.extend([(i % 7) as f64, (i * 3 % 5) as f64]);
            i as f64 * 0.5
        };
        let want = score_rows_chunked(137, 2, &ThreadPool::sequential(), fill);
        assert_eq!(want.0.len(), 137);
        assert_eq!(want.1.len(), 137);
        for threads in [2, 3, 8] {
            assert_eq!(
                score_rows_chunked(137, 2, &ThreadPool::exact(threads), fill),
                want,
                "threads={threads}"
            );
        }
        let (empty, unc) = score_rows_chunked(0, 2, &ThreadPool::exact(4), fill);
        assert!(empty.is_empty() && unc.is_empty());
    }

    /// The row-emitting counterpart of `SumScorer`: window sum in a
    /// 1-wide severity row, window length as the uncertainty. Counts its
    /// scored (not skipped) centers so tests can assert margins are
    /// never scored.
    struct SumRowScorer<'a> {
        data: &'a [i64],
        offset: usize,
        spans: Option<SlidingSpans>,
        tail: std::vec::IntoIter<WindowSpan>,
        row: Vec<f64>,
        scored: &'a AtomicUsize,
    }

    impl<'a> SumRowScorer<'a> {
        fn new(data: &'a [i64], offset: usize, half: usize, scored: &'a AtomicUsize) -> Self {
            Self {
                data,
                offset,
                spans: Some(SlidingSpans::new(half)),
                tail: Vec::new().into_iter(),
                row: Vec::new(),
                scored,
            }
        }

        fn score(&mut self, s: WindowSpan) -> f64 {
            self.scored.fetch_add(1, Ordering::Relaxed);
            let window = &self.data[self.offset + s.start..self.offset + s.end];
            self.row.clear();
            self.row.push(window.iter().sum::<i64>() as f64);
            window.len() as f64
        }

        fn next_tail(&mut self) -> Option<WindowSpan> {
            if let Some(spans) = self.spans.take() {
                self.tail = spans.finish().collect::<Vec<_>>().into_iter();
            }
            self.tail.next()
        }
    }

    impl RowStreamScorer for SumRowScorer<'_> {
        fn push(&mut self, index: usize) -> Option<f64> {
            let spans = self.spans.as_mut().expect("push after flush");
            debug_assert_eq!(index, self.offset + spans.pushed());
            spans.push().map(|s| self.score(s))
        }

        fn push_skipped(&mut self, index: usize) -> bool {
            let spans = self.spans.as_mut().expect("push after flush");
            debug_assert_eq!(index, self.offset + spans.pushed());
            spans.push().is_some()
        }

        fn row(&self) -> &[f64] {
            &self.row
        }

        fn flush(&mut self) -> Option<f64> {
            self.next_tail().map(|s| self.score(s))
        }

        fn flush_skipped(&mut self) -> bool {
            self.next_tail().is_some()
        }
    }

    #[test]
    fn row_stream_scoring_matches_batch_and_never_scores_margins() {
        let data: Vec<i64> = (0..97).map(|i| (i * 31 % 17) - 8).collect();
        let n = data.len();
        for half in [0usize, 1, 2, 5] {
            let mut want = SeverityMatrix::with_capacity(n, 1);
            let mut want_unc = Vec::with_capacity(n);
            for c in 0..n {
                let lo = c.saturating_sub(half);
                let hi = (c + half + 1).min(n);
                want.push_row(&[data[lo..hi].iter().sum::<i64>() as f64]);
                want_unc.push((hi - lo) as f64);
            }
            for threads in [1, 2, 8] {
                let scored = AtomicUsize::new(0);
                let got = score_stream_rows(n, half, 1, &ThreadPool::exact(threads), |offset| {
                    SumRowScorer::new(&data, offset, half, &scored)
                });
                assert_eq!(got.0, want, "half={half} threads={threads}");
                assert_eq!(got.1, want_unc, "half={half} threads={threads}");
                // Margin centers go through push_skipped: every center is
                // scored exactly once no matter how many chunks re-feed
                // its window's items.
                assert_eq!(
                    scored.load(Ordering::Relaxed),
                    n,
                    "half={half} threads={threads}: margins must not be scored"
                );
            }
        }
        let scored = AtomicUsize::new(0);
        let (matrix, unc) = score_stream_rows(0, 2, 1, &ThreadPool::exact(4), |offset| {
            SumRowScorer::new(&data, offset, 2, &scored)
        });
        assert!(matrix.is_empty() && unc.is_empty());
    }

    /// The zero-respawn probe of the persistent runtime: a streaming hot
    /// loop that re-enters the scoring drivers repeatedly must never
    /// create a thread beyond the pool's initial workers.
    #[test]
    fn repeated_stream_scoring_never_respawns_workers() {
        let data: Vec<i64> = (0..500).map(|i| (i % 13) as i64 - 6).collect();
        let pool = ThreadPool::exact(4);
        assert_eq!(pool.spawned_workers(), 3, "workers spawn at construction");
        let want = score_stream_chunked(data.len(), 2, &ThreadPool::sequential(), |offset| {
            SumScorer {
                data: &data,
                offset,
                spans: SlidingSpans::new(2),
            }
        });
        for _ in 0..25 {
            let got = score_stream_chunked(data.len(), 2, &pool, |offset| SumScorer {
                data: &data,
                offset,
                spans: SlidingSpans::new(2),
            });
            assert_eq!(got, want);
            let scored = AtomicUsize::new(0);
            let _ = score_stream_rows(data.len(), 2, 1, &pool, |offset| {
                SumRowScorer::new(&data, offset, 2, &scored)
            });
        }
        assert_eq!(
            pool.spawned_workers(),
            3,
            "stream scoring must submit jobs to parked workers, not spawn"
        );
    }
}
