//! CC-MAB: the resource-unconstrained reference algorithm (Algorithm 1).
//!
//! The paper casts data selection as a contextual combinatorial
//! multi-armed bandit and cites CC-MAB (Chen et al., NeurIPS 2018) as the
//! algorithm that "first explores under-explored arms, then greedily
//! selects arms with highest marginal gain", achieving sublinear regret —
//! but requires per-arm reward estimates that are infeasible for real ML
//! training (each would need a label *and* a retrain). BAL is the
//! resource-constrained approximation; this module implements CC-MAB
//! itself so the trade-off can be studied on synthetic rewards (see the
//! `ablation` bench).

use std::collections::HashMap;

/// Per-cell statistics of the context-space partition.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct CellStats {
    pulls: u64,
    mean_reward: f64,
}

/// The CC-MAB algorithm over contexts in `[0, 1]^d`.
///
/// Contexts are partitioned into `bins^d` hypercubes. Each round, arms in
/// *under-explored* cells (pulled fewer than `K(t) = t^{2/(3+d)} · ln(t+1)`
/// times, the paper's exponent with smoothness `α = 1`) are selected
/// first; remaining budget goes to arms in cells with the highest
/// estimated reward. Rewards are reported back via [`CcMab::update`].
#[derive(Debug, Clone)]
pub struct CcMab {
    d: usize,
    bins: usize,
    t: u64,
    cells: HashMap<Vec<usize>, CellStats>,
}

impl CcMab {
    /// Creates a CC-MAB instance for `d`-dimensional contexts with
    /// `bins` partitions per dimension.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or `bins == 0`.
    pub fn new(d: usize, bins: usize) -> Self {
        assert!(d > 0, "context dimension must be positive");
        assert!(bins > 0, "need at least one bin per dimension");
        Self {
            d,
            bins,
            t: 0,
            cells: HashMap::new(),
        }
    }

    /// The hypercube cell a context falls into (contexts are clamped to
    /// `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if the context dimension differs from `d`.
    pub fn cell_of(&self, context: &[f64]) -> Vec<usize> {
        assert_eq!(context.len(), self.d, "context dimension mismatch");
        context
            .iter()
            .map(|&x| {
                let clamped = x.clamp(0.0, 1.0);
                ((clamped * self.bins as f64) as usize).min(self.bins - 1)
            })
            .collect()
    }

    /// The exploration threshold `K(t)` for the current round.
    pub fn exploration_threshold(&self) -> f64 {
        let t = self.t.max(1) as f64;
        t.powf(2.0 / (3.0 + self.d as f64)) * (t + 1.0).ln()
    }

    /// Advances to the next round and returns its index (1-based).
    pub fn begin_round(&mut self) -> u64 {
        self.t += 1;
        self.t
    }

    /// Selects up to `budget` arm indices from `contexts`:
    /// under-explored cells first, then greedy by estimated cell reward.
    pub fn select(&self, contexts: &[Vec<f64>], budget: usize) -> Vec<usize> {
        let threshold = self.exploration_threshold();
        let mut underexplored = Vec::new();
        let mut explored = Vec::new();
        for (i, ctx) in contexts.iter().enumerate() {
            let cell = self.cell_of(ctx);
            let stats = self.cells.get(&cell).copied().unwrap_or_default();
            if (stats.pulls as f64) < threshold {
                underexplored.push((i, stats.pulls));
            } else {
                explored.push((i, stats.mean_reward));
            }
        }
        // Least-pulled cells first among the under-explored.
        underexplored.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        // Highest estimated reward first among the explored (the greedy
        // marginal-gain step: with a modular reward surrogate the marginal
        // gain of an arm is its cell's mean reward).
        explored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut out: Vec<usize> = underexplored.into_iter().map(|(i, _)| i).collect();
        out.extend(explored.into_iter().map(|(i, _)| i));
        out.truncate(budget);
        out
    }

    /// Reports the observed reward of pulling an arm with this context.
    pub fn update(&mut self, context: &[f64], reward: f64) {
        let cell = self.cell_of(context);
        let stats = self.cells.entry(cell).or_default();
        stats.pulls += 1;
        let n = stats.pulls as f64;
        stats.mean_reward += (reward - stats.mean_reward) / n;
    }

    /// Number of distinct cells observed so far.
    pub fn cells_seen(&self) -> usize {
        self.cells.len()
    }

    /// The estimated mean reward of the cell containing `context`
    /// (`None` if never pulled).
    pub fn estimated_reward(&self, context: &[f64]) -> Option<f64> {
        let cell = self.cell_of(context);
        self.cells.get(&cell).map(|s| s.mean_reward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn cell_mapping_clamps_and_bins() {
        let mab = CcMab::new(2, 4);
        assert_eq!(mab.cell_of(&[0.0, 0.99]), vec![0, 3]);
        assert_eq!(mab.cell_of(&[1.0, -0.5]), vec![3, 0]);
        assert_eq!(mab.cell_of(&[0.26, 0.49]), vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_rejected() {
        CcMab::new(2, 4).cell_of(&[0.5]);
    }

    #[test]
    fn exploration_threshold_grows_with_t() {
        let mut mab = CcMab::new(1, 4);
        mab.begin_round();
        let k1 = mab.exploration_threshold();
        for _ in 0..99 {
            mab.begin_round();
        }
        let k100 = mab.exploration_threshold();
        assert!(k100 > k1);
    }

    #[test]
    fn update_tracks_running_mean() {
        let mut mab = CcMab::new(1, 2);
        mab.update(&[0.1], 1.0);
        mab.update(&[0.1], 0.0);
        assert!((mab.estimated_reward(&[0.1]).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(mab.cells_seen(), 1);
        assert!(mab.estimated_reward(&[0.9]).is_none());
    }

    #[test]
    fn unexplored_cells_are_selected_first() {
        let mut mab = CcMab::new(1, 2);
        mab.begin_round();
        // Cell 0 heavily explored; cell 1 untouched.
        for _ in 0..100 {
            mab.update(&[0.1], 0.9);
        }
        let contexts = vec![vec![0.1], vec![0.9]];
        let sel = mab.select(&contexts, 1);
        assert_eq!(sel, vec![1], "unexplored cell must win");
    }

    #[test]
    fn converges_to_best_cell_on_synthetic_rewards() {
        // Reward = context value. After enough rounds CC-MAB should pull
        // mostly from the top cell.
        let mut mab = CcMab::new(1, 5);
        let mut rng = StdRng::seed_from_u64(9);
        let mut late_good_picks = 0usize;
        let mut late_total = 0usize;
        for round in 0..200 {
            mab.begin_round();
            let contexts: Vec<Vec<f64>> = (0..20).map(|_| vec![rng.gen_range(0.0..1.0)]).collect();
            let sel = mab.select(&contexts, 4);
            for &i in &sel {
                let reward = contexts[i][0];
                mab.update(&contexts[i], reward);
                if round >= 150 {
                    late_total += 1;
                    if contexts[i][0] > 0.6 {
                        late_good_picks += 1;
                    }
                }
            }
        }
        let frac = late_good_picks as f64 / late_total as f64;
        assert!(
            frac > 0.5,
            "late rounds should exploit high-reward cells: {frac}"
        );
    }

    #[test]
    fn select_respects_budget() {
        let mab = CcMab::new(2, 3);
        let contexts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 10.0, 0.5]).collect();
        assert_eq!(mab.select(&contexts, 3).len(), 3);
        assert_eq!(mab.select(&contexts, 50).len(), 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        CcMab::new(0, 3);
    }

    #[test]
    fn equal_reward_cells_rank_by_arm_index() {
        let mut mab = CcMab::new(1, 2);
        mab.update(&[0.1], 0.5);
        mab.update(&[0.9], 0.5);
        // Both cells are explored (one pull beats K(1) = ln 2) with tied
        // means: the greedy ordering must fall back to arm index.
        assert_eq!(mab.select(&[vec![0.9], vec![0.1]], 2), vec![0, 1]);
    }
}
