use omg_core::runtime::ThreadPool;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::CandidatePool;

/// A batch data-selection strategy for active learning.
///
/// Strategies may keep state across rounds (BAL tracks the previous
/// round's fire rates); [`SelectionStrategy::reset`] clears that state
/// between independent trials.
///
/// Strategies are `Send + Sync`: [`SelectionStrategy::score_all`] shares
/// `&self` across the runtime's workers, and experiment drivers move
/// strategies between trial threads. All strategy state is plain data,
/// so this is a bound, not a burden.
pub trait SelectionStrategy: Send + Sync {
    /// Short name for experiment tables ("random", "uncertainty",
    /// "uniform-ma", "bal").
    fn name(&self) -> &str;

    /// The strategy's priority score for one candidate: a pure function
    /// of the pool (no RNG, no round state), higher meaning "label this
    /// sooner". Score-ordered strategies select by sorting on it;
    /// sampling strategies expose the signal their sampling weights
    /// derive from (dashboards rank flagged data with it).
    fn score(&self, pool: &CandidatePool, candidate: usize) -> f64;

    /// Scores every candidate, fanning the per-candidate scoring out
    /// over the runtime's workers and merging in candidate order — the
    /// result is identical at any thread count.
    fn score_all(&self, pool: &CandidatePool, runtime: &ThreadPool) -> Vec<f64> {
        runtime.map_indexed(pool.len(), |i| self.score(pool, i))
    }

    /// Selects up to `budget` distinct pool indices to label.
    fn select(&mut self, pool: &CandidatePool, budget: usize, rng: &mut StdRng) -> Vec<usize>;

    /// Clears cross-round state (start of a new trial).
    fn reset(&mut self) {}
}

/// Sorts candidate indices by descending score, breaking ties by earlier
/// index (the deterministic order every score-ranked path shares).
fn sort_by_score_desc<F: Fn(usize) -> f64>(order: &mut [usize], score: F) {
    order.sort_by(|&a, &b| score(b).total_cmp(&score(a)).then(a.cmp(&b)));
}

/// Samples `k` distinct indices uniformly from `candidates` (excluding
/// already-taken ones), in selection order.
fn sample_uniform(
    candidates: &[usize],
    k: usize,
    taken: &mut [bool],
    rng: &mut StdRng,
) -> Vec<usize> {
    let mut avail: Vec<usize> = candidates.iter().copied().filter(|&i| !taken[i]).collect();
    avail.shuffle(rng);
    let picked: Vec<usize> = avail.into_iter().take(k).collect();
    for &i in &picked {
        taken[i] = true;
    }
    picked
}

/// The random-sampling baseline.
#[derive(Debug, Clone, Default)]
pub struct RandomStrategy;

impl SelectionStrategy for RandomStrategy {
    fn name(&self) -> &str {
        "random"
    }

    /// Uniform: every candidate is equally likely.
    fn score(&self, _pool: &CandidatePool, _candidate: usize) -> f64 {
        1.0
    }

    fn select(&mut self, pool: &CandidatePool, budget: usize, rng: &mut StdRng) -> Vec<usize> {
        let mut taken = vec![false; pool.len()];
        let all: Vec<usize> = (0..pool.len()).collect();
        sample_uniform(&all, budget, &mut taken, rng)
    }
}

/// The uncertainty-sampling baseline: highest least-confidence scores
/// first ("uncertainty sampling with 'least confident'", §5.4).
#[derive(Debug, Clone, Default)]
pub struct UncertaintyStrategy;

impl SelectionStrategy for UncertaintyStrategy {
    fn name(&self) -> &str {
        "uncertainty"
    }

    /// The model's least-confidence score.
    fn score(&self, pool: &CandidatePool, candidate: usize) -> f64 {
        pool.uncertainty(candidate)
    }

    fn select(&mut self, pool: &CandidatePool, budget: usize, _rng: &mut StdRng) -> Vec<usize> {
        let mut order: Vec<usize> = (0..pool.len()).collect();
        sort_by_score_desc(&mut order, |i| self.score(pool, i));
        order.truncate(budget);
        order
    }
}

/// Picks one assertion uniformly among those with unselected triggered
/// points, then one of its triggered points uniformly. Returns `None`
/// when no assertion has anything left.
fn pick_uniform_from_assertions(
    pool: &CandidatePool,
    taken: &mut [bool],
    rng: &mut StdRng,
) -> Option<usize> {
    let live: Vec<usize> = (0..pool.num_assertions())
        .filter(|&m| pool.triggered_by(m).iter().any(|&i| !taken[i]))
        .collect();
    let &m = live.choose(rng)?;
    let avail: Vec<usize> = pool
        .triggered_by(m)
        .into_iter()
        .filter(|&i| !taken[i])
        .collect();
    let &i = avail.choose(rng)?;
    taken[i] = true;
    Some(i)
}

/// The uniform-from-assertions baseline ("uniform sampling from data that
/// triggered assertions", §5.4): budget spread uniformly across
/// assertions, points sampled uniformly within each. Falls back to random
/// sampling if the flagged data runs out before the budget does.
#[derive(Debug, Clone, Default)]
pub struct UniformAssertionStrategy;

impl SelectionStrategy for UniformAssertionStrategy {
    fn name(&self) -> &str {
        "uniform-ma"
    }

    /// Flagged-or-not: selection samples uniformly *within* the flagged
    /// set, so the pure priority signal is membership.
    fn score(&self, pool: &CandidatePool, candidate: usize) -> f64 {
        if pool.context(candidate).iter().any(|&s| s > 0.0) {
            1.0
        } else {
            0.0
        }
    }

    fn select(&mut self, pool: &CandidatePool, budget: usize, rng: &mut StdRng) -> Vec<usize> {
        let mut taken = vec![false; pool.len()];
        let mut out = Vec::with_capacity(budget);
        while out.len() < budget {
            match pick_uniform_from_assertions(pool, &mut taken, rng) {
                Some(i) => out.push(i),
                None => break,
            }
        }
        if out.len() < budget {
            let all: Vec<usize> = (0..pool.len()).collect();
            out.extend(sample_uniform(&all, budget - out.len(), &mut taken, rng));
        }
        out
    }
}

/// What BAL falls back to when no assertion's fire rate is reducing
/// ("BAL will default to random sampling or uncertainty sampling, as
/// specified by the user", §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// Fall back to uniform random sampling.
    Random,
    /// Fall back to least-confidence uncertainty sampling.
    Uncertainty,
}

/// BAL — the bandit-based active-learning algorithm of §3 (Algorithm 2).
///
/// Round 0 samples uniformly from the assertions. Later rounds compute
/// each assertion's *marginal reduction* in fire rate versus the previous
/// round, select assertions proportional to that reduction, and sample
/// points that trigger the chosen assertion proportional to their
/// severity-score **rank**. 25% of every round's budget explores
/// assertions uniformly (ε-greedy); if no assertion's rate is reducing by
/// at least 1%, the whole budget goes to the fallback policy.
///
/// Fire *rates* (counts normalized by pool size) rather than raw counts
/// are differenced, so a shrinking unlabeled pool does not masquerade as
/// improvement.
#[derive(Debug, Clone)]
pub struct BalStrategy {
    fallback: FallbackPolicy,
    /// Fire rates observed in the previous round, if any.
    prev_rates: Option<Vec<f64>>,
    /// Fraction of the budget reserved for uniform assertion exploration.
    epsilon: f64,
    /// Minimum relative reduction for an assertion to count as improving.
    min_reduction: f64,
}

impl BalStrategy {
    /// Creates BAL with the paper's constants (ε = 25%, 1% reduction
    /// threshold).
    pub fn new(fallback: FallbackPolicy) -> Self {
        Self {
            fallback,
            prev_rates: None,
            epsilon: 0.25,
            min_reduction: 0.01,
        }
    }

    /// Overrides the exploration fraction.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is outside `[0, 1]`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0,1]");
        self.epsilon = epsilon;
        self
    }

    /// The marginal reductions `r_m` given previous and current rates.
    fn reductions(prev: &[f64], cur: &[f64]) -> Vec<f64> {
        prev.iter()
            .zip(cur)
            .map(|(&p, &c)| if p > 0.0 { ((p - c) / p).max(0.0) } else { 0.0 })
            .collect()
    }

    /// Samples one point triggering assertion `m`, with probability
    /// proportional to severity *rank* (highest severity = highest
    /// weight), among unselected points. Returns `None` if none remain.
    fn pick_by_severity_rank(
        pool: &CandidatePool,
        m: usize,
        taken: &mut [bool],
        rng: &mut StdRng,
    ) -> Option<usize> {
        let mut avail: Vec<usize> = pool
            .triggered_by(m)
            .into_iter()
            .filter(|&i| !taken[i])
            .collect();
        if avail.is_empty() {
            return None;
        }
        // Ascending severity: rank weight = position + 1.
        avail.sort_by(|&a, &b| {
            pool.severity(a, m)
                .total_cmp(&pool.severity(b, m))
                .then(a.cmp(&b))
        });
        let total: f64 = (1..=avail.len()).map(|r| r as f64).sum();
        let mut u = rng.gen_range(0.0..total);
        for (pos, &i) in avail.iter().enumerate() {
            let w = (pos + 1) as f64;
            if u < w {
                taken[i] = true;
                return Some(i);
            }
            u -= w;
        }
        let &last = avail.last().expect("non-empty");
        taken[last] = true;
        Some(last)
    }

    fn fallback_select(
        &self,
        pool: &CandidatePool,
        k: usize,
        taken: &mut [bool],
        rng: &mut StdRng,
    ) -> Vec<usize> {
        match self.fallback {
            FallbackPolicy::Random => {
                let all: Vec<usize> = (0..pool.len()).collect();
                sample_uniform(&all, k, taken, rng)
            }
            FallbackPolicy::Uncertainty => {
                let mut order: Vec<usize> = (0..pool.len()).filter(|&i| !taken[i]).collect();
                sort_by_score_desc(&mut order, |i| pool.uncertainty(i));
                order.truncate(k);
                for &i in &order {
                    taken[i] = true;
                }
                order
            }
        }
    }
}

impl SelectionStrategy for BalStrategy {
    fn name(&self) -> &str {
        "bal"
    }

    /// The maximum severity across assertions — the signal BAL's
    /// severity-rank sampling weights points by within a chosen
    /// assertion. (Selection additionally uses per-round marginal
    /// reductions and RNG; this is the pure monitoring-facing priority.)
    fn score(&self, pool: &CandidatePool, candidate: usize) -> f64 {
        pool.context(candidate)
            .iter()
            .copied()
            .fold(0.0f64, omg_core::float::fmax)
    }

    fn select(&mut self, pool: &CandidatePool, budget: usize, rng: &mut StdRng) -> Vec<usize> {
        let mut taken = vec![false; pool.len()];
        let mut out = Vec::with_capacity(budget);
        let rates = pool.fire_rates();
        let d = pool.num_assertions();

        if d == 0 || pool.is_empty() {
            return self.fallback_select(pool, budget, &mut taken, rng);
        }

        match self.prev_rates.take() {
            None => {
                // Round 0: uniformly at random from the d assertions.
                while out.len() < budget {
                    match pick_uniform_from_assertions(pool, &mut taken, rng) {
                        Some(i) => out.push(i),
                        None => break,
                    }
                }
            }
            Some(prev) => {
                let reductions = Self::reductions(&prev, &rates);
                let total_reduction: f64 = reductions.iter().sum();
                if reductions.iter().all(|&r| r < self.min_reduction) {
                    // No assertion is reducing: hand the round to the
                    // fallback policy.
                    out.extend(self.fallback_select(pool, budget, &mut taken, rng));
                } else {
                    let explore = ((budget as f64) * self.epsilon).round() as usize;
                    let exploit = budget.saturating_sub(explore);
                    // Exploit: assertions ∝ marginal reduction, points ∝
                    // severity rank.
                    for _ in 0..exploit {
                        let mut u = rng.gen_range(0.0..total_reduction);
                        let mut chosen = d - 1;
                        for (m, &r) in reductions.iter().enumerate() {
                            if u < r {
                                chosen = m;
                                break;
                            }
                            u -= r;
                        }
                        // If the chosen assertion is exhausted, try the
                        // others before giving up on this slot.
                        let mut picked = Self::pick_by_severity_rank(pool, chosen, &mut taken, rng);
                        if picked.is_none() {
                            for m in 0..d {
                                picked = Self::pick_by_severity_rank(pool, m, &mut taken, rng);
                                if picked.is_some() {
                                    break;
                                }
                            }
                        }
                        match picked {
                            Some(i) => out.push(i),
                            None => break,
                        }
                    }
                    // Explore: uniform across assertions (ε-greedy), "so
                    // that no contexts are underexplored as training
                    // progresses".
                    while out.len() < budget {
                        match pick_uniform_from_assertions(pool, &mut taken, rng) {
                            Some(i) => out.push(i),
                            None => break,
                        }
                    }
                }
            }
        }

        // Any remaining budget (flagged data exhausted) goes to fallback.
        if out.len() < budget {
            out.extend(self.fallback_select(pool, budget - out.len(), &mut taken, rng));
        }
        self.prev_rates = Some(rates);
        out
    }

    fn reset(&mut self) {
        self.prev_rates = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    /// 20 points, 2 assertions: 0-9 trigger assertion 0 (severity = index),
    /// 10-14 trigger assertion 1, 15-19 trigger nothing.
    fn pool() -> CandidatePool {
        let severities: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                if i < 10 {
                    vec![1.0 + i as f64, 0.0]
                } else if i < 15 {
                    vec![0.0, 1.0]
                } else {
                    vec![0.0, 0.0]
                }
            })
            .collect();
        let uncertainties: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
        CandidatePool::new(severities, uncertainties).unwrap()
    }

    fn assert_distinct(xs: &[usize]) {
        let mut s = xs.to_vec();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), xs.len(), "duplicate selections: {xs:?}");
    }

    #[test]
    fn random_respects_budget_and_uniqueness() {
        let p = pool();
        let sel = RandomStrategy.select(&p, 7, &mut rng());
        assert_eq!(sel.len(), 7);
        assert_distinct(&sel);
        // Budget larger than the pool: everything once.
        let sel = RandomStrategy.select(&p, 100, &mut rng());
        assert_eq!(sel.len(), 20);
        assert_distinct(&sel);
    }

    #[test]
    fn uncertainty_picks_most_uncertain() {
        let p = pool();
        let sel = UncertaintyStrategy.select(&p, 3, &mut rng());
        assert_eq!(sel, vec![19, 18, 17]);
    }

    #[test]
    fn uniform_ma_prefers_flagged_points() {
        let p = pool();
        let sel = UniformAssertionStrategy.select(&p, 10, &mut rng());
        assert_eq!(sel.len(), 10);
        assert_distinct(&sel);
        // All 10 must be flagged (15 flagged points exist).
        assert!(
            sel.iter().all(|&i| i < 15),
            "unflagged point selected: {sel:?}"
        );
    }

    #[test]
    fn uniform_ma_balances_assertions() {
        // Assertion 1 has only 5 triggered points but should still get
        // roughly half the picks when both assertions have data.
        let p = pool();
        let mut a1 = 0;
        for seed in 0..50 {
            let mut r = StdRng::seed_from_u64(seed);
            let sel = UniformAssertionStrategy.select(&p, 4, &mut r);
            a1 += sel.iter().filter(|&&i| (10..15).contains(&i)).count();
        }
        let frac = a1 as f64 / 200.0;
        assert!(
            (0.3..0.7).contains(&frac),
            "assertion 1 share {frac} not balanced"
        );
    }

    #[test]
    fn uniform_ma_fills_with_random_when_flagged_exhausted() {
        let p = pool();
        let sel = UniformAssertionStrategy.select(&p, 18, &mut rng());
        assert_eq!(sel.len(), 18);
        assert_distinct(&sel);
    }

    #[test]
    fn bal_round_zero_samples_from_assertions() {
        let p = pool();
        let mut bal = BalStrategy::new(FallbackPolicy::Random);
        let sel = bal.select(&p, 8, &mut rng());
        assert_eq!(sel.len(), 8);
        assert_distinct(&sel);
        assert!(
            sel.iter().all(|&i| i < 15),
            "round 0 must sample flagged data"
        );
    }

    #[test]
    fn bal_allocates_to_reducing_assertion() {
        // Round 0 establishes rates; in round 1, assertion 0's rate halves
        // while assertion 1's stays flat -> exploit budget goes to 0.
        let p0 = pool();
        let mut bal = BalStrategy::new(FallbackPolicy::Random).with_epsilon(0.0);
        let _ = bal.select(&p0, 4, &mut rng());

        // New pool: assertion 0 fires on 5 points (was 10), assertion 1
        // still on 5.
        let severities: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                if i < 5 {
                    vec![1.0 + i as f64, 0.0]
                } else if i < 10 {
                    vec![0.0, 1.0]
                } else {
                    vec![0.0, 0.0]
                }
            })
            .collect();
        let p1 = CandidatePool::new(severities, vec![0.5; 20]).unwrap();
        let mut from_a0 = 0;
        let mut total = 0;
        for seed in 0..30 {
            bal.reset();
            let mut r = StdRng::seed_from_u64(seed);
            let _ = bal.select(&p0, 4, &mut r);
            let sel = bal.select(&p1, 4, &mut r);
            from_a0 += sel.iter().filter(|&&i| i < 5).count();
            total += sel.len();
        }
        let frac = from_a0 as f64 / total as f64;
        assert!(
            frac > 0.8,
            "exploit budget should chase the reducing assertion: {frac}"
        );
    }

    #[test]
    fn bal_falls_back_when_nothing_reduces() {
        let p = pool();
        let mut bal = BalStrategy::new(FallbackPolicy::Uncertainty).with_epsilon(0.0);
        let _ = bal.select(&p, 4, &mut rng());
        // Same pool again: no reduction anywhere -> uncertainty fallback,
        // which picks the highest-uncertainty (unflagged) points.
        let sel = bal.select(&p, 3, &mut rng());
        assert_eq!(sel, vec![19, 18, 17]);
    }

    #[test]
    fn bal_severity_rank_prefers_high_severity() {
        // With assertion 0 reducing, exploit picks should skew toward the
        // high-severity points (indices 8, 9 have the top severities).
        let p0 = pool();
        let mut high = 0;
        let mut total = 0;
        for seed in 0..200 {
            let mut bal = BalStrategy::new(FallbackPolicy::Random).with_epsilon(0.0);
            let mut r = StdRng::seed_from_u64(seed);
            let _ = bal.select(&p0, 2, &mut r);
            // Assertion 0 reduced (10 -> 8 fired), assertion 1 flat.
            let severities: Vec<Vec<f64>> = (0..20)
                .map(|i| {
                    if i < 8 {
                        vec![1.0 + i as f64, 0.0]
                    } else if (10..15).contains(&i) {
                        vec![0.0, 1.0]
                    } else {
                        vec![0.0, 0.0]
                    }
                })
                .collect();
            let p1 = CandidatePool::new(severities, vec![0.5; 20]).unwrap();
            let sel = bal.select(&p1, 1, &mut r);
            if let Some(&i) = sel.first() {
                if i < 8 {
                    total += 1;
                    // Top half by severity among triggered: indices 4..8.
                    if i >= 4 {
                        high += 1;
                    }
                }
            }
        }
        assert!(total > 50, "exploit picks should land on assertion 0");
        let frac = high as f64 / total as f64;
        assert!(
            frac > 0.6,
            "severity-rank sampling should favor high severity: {frac}"
        );
    }

    #[test]
    fn bal_handles_empty_and_assertionless_pools() {
        let empty = CandidatePool::new(vec![], vec![]).unwrap();
        let mut bal = BalStrategy::new(FallbackPolicy::Random);
        assert!(bal.select(&empty, 5, &mut rng()).is_empty());

        let no_assertions = CandidatePool::new(vec![vec![], vec![]], vec![0.1, 0.9]).unwrap();
        let sel = bal.select(&no_assertions, 1, &mut rng());
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn bal_reset_clears_history() {
        let p = pool();
        let mut bal = BalStrategy::new(FallbackPolicy::Random);
        let _ = bal.select(&p, 4, &mut rng());
        bal.reset();
        // After reset the next call behaves like round 0 (flagged only).
        let sel = bal.select(&p, 6, &mut rng());
        assert!(sel.iter().all(|&i| i < 15));
    }

    #[test]
    fn scores_are_pure_and_thread_count_invariant() {
        let p = pool();
        let strategies: Vec<Box<dyn SelectionStrategy>> = vec![
            Box::new(RandomStrategy),
            Box::new(UncertaintyStrategy),
            Box::new(UniformAssertionStrategy),
            Box::new(BalStrategy::new(FallbackPolicy::Random)),
        ];
        for s in &strategies {
            let seq = s.score_all(&p, &ThreadPool::sequential());
            assert_eq!(seq.len(), p.len(), "{}", s.name());
            for threads in [2, 8] {
                let par = s.score_all(&p, &ThreadPool::exact(threads));
                assert_eq!(par, seq, "{} at {threads} threads", s.name());
            }
        }
    }

    #[test]
    fn score_matches_each_strategys_signal() {
        let p = pool();
        assert_eq!(RandomStrategy.score(&p, 0), 1.0);
        assert_eq!(UncertaintyStrategy.score(&p, 3), p.uncertainty(3));
        // Candidate 0 triggers assertion 0; candidate 19 triggers nothing.
        assert_eq!(UniformAssertionStrategy.score(&p, 0), 1.0);
        assert_eq!(UniformAssertionStrategy.score(&p, 19), 0.0);
        // BAL: max severity across assertions (candidate 9 has 10.0).
        assert_eq!(BalStrategy::new(FallbackPolicy::Random).score(&p, 9), 10.0);
    }

    #[test]
    fn uncertainty_select_is_score_ordered() {
        let p = pool();
        let strategy = UncertaintyStrategy;
        let sel = UncertaintyStrategy.select(&p, p.len(), &mut rng());
        let scores = strategy.score_all(&p, &ThreadPool::sequential());
        for w in sel.windows(2) {
            assert!(scores[w[0]] >= scores[w[1]]);
        }
    }

    #[test]
    fn strategy_names() {
        assert_eq!(RandomStrategy.name(), "random");
        assert_eq!(UncertaintyStrategy.name(), "uncertainty");
        assert_eq!(UniformAssertionStrategy.name(), "uniform-ma");
        assert_eq!(BalStrategy::new(FallbackPolicy::Random).name(), "bal");
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_rejected() {
        BalStrategy::new(FallbackPolicy::Random).with_epsilon(1.5);
    }

    #[test]
    fn score_sort_is_total_and_breaks_ties_by_index() {
        let scores = [1.0, f64::NAN, 1.0, 2.0];
        let mut order: Vec<usize> = (0..scores.len()).collect();
        sort_by_score_desc(&mut order, |i| scores[i]);
        // +NaN sorts above every real under the total order (a poisoned
        // score surfaces first instead of shuffling the ranking), and
        // the 1.0 tie resolves by index.
        assert_eq!(order, vec![1, 3, 0, 2]);
    }

    #[test]
    fn bal_score_keeps_nan_severity_visible() {
        let p = CandidatePool::new(
            vec![vec![0.2, f64::NAN], vec![f64::NAN, 0.2]],
            vec![0.0, 0.0],
        )
        .unwrap();
        let s = BalStrategy::new(FallbackPolicy::Random);
        // The fmax fold must not drop a NaN severity at either position
        // (f64::max would, making the score depend on assertion order).
        assert!(s.score(&p, 0).is_nan());
        assert!(s.score(&p, 1).is_nan());
    }
}
