//! Active learning with model assertions.
//!
//! Implements §3 of the paper:
//!
//! * [`CandidatePool`] — the unlabeled pool, carrying each candidate's
//!   per-assertion severity vector (the bandit *context*) and the model's
//!   uncertainty score (for the baseline).
//! * [`SelectionStrategy`] — the data-selection interface, with the four
//!   strategies the paper compares (§5.4): [`RandomStrategy`],
//!   [`UncertaintyStrategy`] (least-confidence), [`UniformAssertionStrategy`]
//!   (uniform over assertion-flagged data), and [`BalStrategy`]
//!   (Algorithm 2).
//! * [`CcMab`] — the resource-unconstrained reference algorithm
//!   (Algorithm 1, Chen et al. 2018): contextual combinatorial bandits
//!   with hypercube context partitioning, exploration of under-explored
//!   cells, then greedy exploitation.
//! * [`run_rounds`] — the round loop: score pool → select batch → label &
//!   retrain → evaluate, repeated for `T` rounds as in Figures 4/5/9.
//!
//! # Example: BAL on a synthetic pool
//!
//! ```
//! use omg_active::{BalStrategy, CandidatePool, FallbackPolicy, SelectionStrategy};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Ten points, two assertions; points 0-4 trigger assertion 0.
//! let severities: Vec<Vec<f64>> = (0..10)
//!     .map(|i| if i < 5 { vec![1.0, 0.0] } else { vec![0.0, 0.0] })
//!     .collect();
//! let pool = CandidatePool::new(severities, vec![0.5; 10]).unwrap();
//! let mut bal = BalStrategy::new(FallbackPolicy::Random);
//! let mut rng = StdRng::seed_from_u64(1);
//! let picked = bal.select(&pool, 3, &mut rng);
//! assert_eq!(picked.len(), 3);
//! assert!(picked.iter().all(|&i| i < 5), "round 0 samples from flagged data");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ccmab;
mod pool;
mod runner;
mod strategy;

pub use ccmab::CcMab;
// The scoped-thread runtime strategies fan pool scoring out over; re-
// exported so harness code can name it without an `omg-core` import.
pub use omg_core::runtime::ThreadPool;
pub use pool::CandidatePool;
pub use runner::{run_rounds, ActiveLearner, RoundRecord};
pub use strategy::{
    BalStrategy, FallbackPolicy, RandomStrategy, SelectionStrategy, UncertaintyStrategy,
    UniformAssertionStrategy,
};
