use std::error::Error;
use std::fmt;

use omg_core::runtime::ThreadPool;
use omg_core::SampleReport;

/// Error constructing a [`CandidatePool`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolShapeError {
    detail: String,
}

impl fmt::Display for PoolShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inconsistent pool shape: {}", self.detail)
    }
}

impl Error for PoolShapeError {}

/// The unlabeled candidate pool presented to a selection strategy.
///
/// Each candidate carries:
///
/// * a **severity vector** — one entry per registered assertion, `0`
///   meaning the assertion abstained on this point. This is BAL's bandit
///   context ("Each entry in a feature vector is the severity score from a
///   model assertion", §3).
/// * an **uncertainty score** — the model's least-confidence score, used
///   by the uncertainty baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePool {
    severities: Vec<Vec<f64>>,
    uncertainties: Vec<f64>,
    num_assertions: usize,
}

impl CandidatePool {
    /// Creates a pool.
    ///
    /// # Errors
    ///
    /// Returns [`PoolShapeError`] if the two inputs disagree in length or
    /// the severity rows are ragged.
    pub fn new(severities: Vec<Vec<f64>>, uncertainties: Vec<f64>) -> Result<Self, PoolShapeError> {
        if severities.len() != uncertainties.len() {
            return Err(PoolShapeError {
                detail: format!(
                    "{} severity rows vs {} uncertainty scores",
                    severities.len(),
                    uncertainties.len()
                ),
            });
        }
        let num_assertions = severities.first().map_or(0, Vec::len);
        if severities.iter().any(|r| r.len() != num_assertions) {
            return Err(PoolShapeError {
                detail: "ragged severity rows".to_string(),
            });
        }
        Ok(Self {
            severities,
            uncertainties,
            num_assertions,
        })
    }

    /// Builds a pool straight from monitor [`SampleReport`]s (e.g. the
    /// output of `Monitor::process_batch`), pairing each report's
    /// severity vector with the candidate's uncertainty score.
    ///
    /// # Errors
    ///
    /// Returns [`PoolShapeError`] if lengths disagree or the reports
    /// carry ragged severity vectors.
    pub fn from_reports(
        reports: &[SampleReport],
        uncertainties: Vec<f64>,
    ) -> Result<Self, PoolShapeError> {
        let severities = reports.iter().map(SampleReport::severity_vector).collect();
        Self::new(severities, uncertainties)
    }

    /// Builds a pool by scoring every candidate in parallel over the
    /// runtime: `scorer(i)` returns candidate `i`'s `(severity vector,
    /// uncertainty)` pair. Results merge in candidate order, so the pool
    /// is identical at any thread count (the scorer must be a pure
    /// function of the index).
    ///
    /// This is the fan-out path the experiment harness uses to
    /// construct pools: running the assertion set over every candidate
    /// window dominates pool-construction cost.
    ///
    /// # Errors
    ///
    /// Returns [`PoolShapeError`] if the scorer produces ragged severity
    /// vectors.
    pub fn build_parallel<F>(
        runtime: &ThreadPool,
        n: usize,
        scorer: F,
    ) -> Result<Self, PoolShapeError>
    where
        F: Fn(usize) -> (Vec<f64>, f64) + Sync,
    {
        let (severities, uncertainties) = runtime.map_indexed(n, scorer).into_iter().unzip();
        Self::new(severities, uncertainties)
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.severities.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.severities.is_empty()
    }

    /// Number of assertion dimensions (`d`).
    pub fn num_assertions(&self) -> usize {
        self.num_assertions
    }

    /// Severity of assertion `m` on candidate `i`.
    pub fn severity(&self, i: usize, m: usize) -> f64 {
        // PANIC: documented accessor contract — i and m come from
        // 0..len() / 0..num_assertions(), the pool's own id spaces.
        self.severities[i][m]
    }

    /// The full severity vector (context) of candidate `i`.
    pub fn context(&self, i: usize) -> &[f64] {
        // PANIC: same candidate-id contract as severity().
        &self.severities[i]
    }

    /// Model uncertainty of candidate `i`.
    pub fn uncertainty(&self, i: usize) -> f64 {
        // PANIC: same candidate-id contract as severity().
        self.uncertainties[i]
    }

    /// Candidates on which assertion `m` fired (severity > 0).
    pub fn triggered_by(&self, m: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.severities[i][m] > 0.0)
            .collect()
    }

    /// Candidates flagged by at least one assertion.
    pub fn any_triggered(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.severities[i].iter().any(|&s| s > 0.0))
            .collect()
    }

    /// Number of candidates on which each assertion fired (the fire-count
    /// vector BAL differences across rounds).
    pub fn fire_counts(&self) -> Vec<usize> {
        (0..self.num_assertions)
            .map(|m| self.triggered_by(m).len())
            .collect()
    }

    /// Per-assertion fire *rates* (counts normalized by pool size), which
    /// are comparable across rounds even as the pool shrinks.
    pub fn fire_rates(&self) -> Vec<f64> {
        let n = self.len().max(1) as f64;
        self.fire_counts()
            .into_iter()
            .map(|c| c as f64 / n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> CandidatePool {
        CandidatePool::new(
            vec![
                vec![1.0, 0.0],
                vec![0.0, 2.0],
                vec![3.0, 1.0],
                vec![0.0, 0.0],
            ],
            vec![0.1, 0.9, 0.5, 0.3],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let p = pool();
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.num_assertions(), 2);
        assert_eq!(p.severity(2, 0), 3.0);
        assert_eq!(p.context(1), &[0.0, 2.0]);
        assert_eq!(p.uncertainty(1), 0.9);
    }

    #[test]
    fn triggered_queries() {
        let p = pool();
        assert_eq!(p.triggered_by(0), vec![0, 2]);
        assert_eq!(p.triggered_by(1), vec![1, 2]);
        assert_eq!(p.any_triggered(), vec![0, 1, 2]);
        assert_eq!(p.fire_counts(), vec![2, 2]);
        assert_eq!(p.fire_rates(), vec![0.5, 0.5]);
    }

    #[test]
    fn shape_errors() {
        assert!(CandidatePool::new(vec![vec![1.0]], vec![]).is_err());
        assert!(CandidatePool::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0.0, 0.0]).is_err());
    }

    #[test]
    fn empty_pool() {
        let p = CandidatePool::new(vec![], vec![]).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.num_assertions(), 0);
        assert!(p.fire_counts().is_empty());
    }

    #[test]
    fn from_reports_carries_severity_vectors() {
        use omg_core::{Monitor, Severity};
        let mut m: Monitor<i32> = Monitor::new();
        m.assertions_mut()
            .add_fn("neg", |&x: &i32| Severity::from_bool(x < 0));
        m.assertions_mut()
            .add_fn("mag", |&x: &i32| Severity::new(x.abs() as f64));
        let samples = vec![-2, 3];
        let reports = m.process_batch(&samples, &ThreadPool::sequential());
        let p = CandidatePool::from_reports(&reports, vec![0.1, 0.9]).unwrap();
        assert_eq!(p.context(0), &[1.0, 2.0]);
        assert_eq!(p.context(1), &[0.0, 3.0]);
        assert_eq!(p.uncertainty(1), 0.9);
        assert!(CandidatePool::from_reports(&reports, vec![0.5]).is_err());
    }

    #[test]
    fn build_parallel_is_thread_count_invariant() {
        let scorer = |i: usize| {
            (
                vec![i as f64, if i % 3 == 0 { 1.0 } else { 0.0 }],
                i as f64 / 100.0,
            )
        };
        let seq = CandidatePool::build_parallel(&ThreadPool::sequential(), 50, scorer).unwrap();
        for threads in [2, 8] {
            let par =
                CandidatePool::build_parallel(&ThreadPool::exact(threads), 50, scorer).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
        assert_eq!(seq.len(), 50);
        assert_eq!(seq.num_assertions(), 2);
        // Ragged scorers surface as shape errors.
        let ragged =
            CandidatePool::build_parallel(&ThreadPool::sequential(), 3, |i| (vec![0.0; i], 0.0));
        assert!(ragged.is_err());
    }
}
