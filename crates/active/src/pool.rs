use std::error::Error;
use std::fmt;

/// Error constructing a [`CandidatePool`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolShapeError {
    detail: String,
}

impl fmt::Display for PoolShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inconsistent pool shape: {}", self.detail)
    }
}

impl Error for PoolShapeError {}

/// The unlabeled candidate pool presented to a selection strategy.
///
/// Each candidate carries:
///
/// * a **severity vector** — one entry per registered assertion, `0`
///   meaning the assertion abstained on this point. This is BAL's bandit
///   context ("Each entry in a feature vector is the severity score from a
///   model assertion", §3).
/// * an **uncertainty score** — the model's least-confidence score, used
///   by the uncertainty baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidatePool {
    severities: Vec<Vec<f64>>,
    uncertainties: Vec<f64>,
    num_assertions: usize,
}

impl CandidatePool {
    /// Creates a pool.
    ///
    /// # Errors
    ///
    /// Returns [`PoolShapeError`] if the two inputs disagree in length or
    /// the severity rows are ragged.
    pub fn new(severities: Vec<Vec<f64>>, uncertainties: Vec<f64>) -> Result<Self, PoolShapeError> {
        if severities.len() != uncertainties.len() {
            return Err(PoolShapeError {
                detail: format!(
                    "{} severity rows vs {} uncertainty scores",
                    severities.len(),
                    uncertainties.len()
                ),
            });
        }
        let num_assertions = severities.first().map_or(0, Vec::len);
        if severities.iter().any(|r| r.len() != num_assertions) {
            return Err(PoolShapeError {
                detail: "ragged severity rows".to_string(),
            });
        }
        Ok(Self {
            severities,
            uncertainties,
            num_assertions,
        })
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.severities.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.severities.is_empty()
    }

    /// Number of assertion dimensions (`d`).
    pub fn num_assertions(&self) -> usize {
        self.num_assertions
    }

    /// Severity of assertion `m` on candidate `i`.
    pub fn severity(&self, i: usize, m: usize) -> f64 {
        self.severities[i][m]
    }

    /// The full severity vector (context) of candidate `i`.
    pub fn context(&self, i: usize) -> &[f64] {
        &self.severities[i]
    }

    /// Model uncertainty of candidate `i`.
    pub fn uncertainty(&self, i: usize) -> f64 {
        self.uncertainties[i]
    }

    /// Candidates on which assertion `m` fired (severity > 0).
    pub fn triggered_by(&self, m: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.severities[i][m] > 0.0)
            .collect()
    }

    /// Candidates flagged by at least one assertion.
    pub fn any_triggered(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.severities[i].iter().any(|&s| s > 0.0))
            .collect()
    }

    /// Number of candidates on which each assertion fired (the fire-count
    /// vector BAL differences across rounds).
    pub fn fire_counts(&self) -> Vec<usize> {
        (0..self.num_assertions)
            .map(|m| self.triggered_by(m).len())
            .collect()
    }

    /// Per-assertion fire *rates* (counts normalized by pool size), which
    /// are comparable across rounds even as the pool shrinks.
    pub fn fire_rates(&self) -> Vec<f64> {
        let n = self.len().max(1) as f64;
        self.fire_counts()
            .into_iter()
            .map(|c| c as f64 / n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> CandidatePool {
        CandidatePool::new(
            vec![
                vec![1.0, 0.0],
                vec![0.0, 2.0],
                vec![3.0, 1.0],
                vec![0.0, 0.0],
            ],
            vec![0.1, 0.9, 0.5, 0.3],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let p = pool();
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.num_assertions(), 2);
        assert_eq!(p.severity(2, 0), 3.0);
        assert_eq!(p.context(1), &[0.0, 2.0]);
        assert_eq!(p.uncertainty(1), 0.9);
    }

    #[test]
    fn triggered_queries() {
        let p = pool();
        assert_eq!(p.triggered_by(0), vec![0, 2]);
        assert_eq!(p.triggered_by(1), vec![1, 2]);
        assert_eq!(p.any_triggered(), vec![0, 1, 2]);
        assert_eq!(p.fire_counts(), vec![2, 2]);
        assert_eq!(p.fire_rates(), vec![0.5, 0.5]);
    }

    #[test]
    fn shape_errors() {
        assert!(CandidatePool::new(vec![vec![1.0]], vec![]).is_err());
        assert!(CandidatePool::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0.0, 0.0]).is_err());
    }

    #[test]
    fn empty_pool() {
        let p = CandidatePool::new(vec![], vec![]).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.num_assertions(), 0);
        assert!(p.fire_counts().is_empty());
    }
}
