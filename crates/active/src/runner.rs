use rand::rngs::StdRng;

use crate::{CandidatePool, SelectionStrategy};

/// The domain side of an active-learning experiment: scoring the pool,
/// labeling + retraining, and evaluation. Implemented per task in the
/// experiment harness (night-street, NuScenes, ECG).
pub trait ActiveLearner {
    /// Scores the current unlabeled pool: runs the model and the
    /// assertions over it and returns severity vectors and uncertainty
    /// scores. Index `i` of the returned pool must correspond to the
    /// `i`-th currently-unlabeled candidate.
    fn pool(&mut self) -> CandidatePool;

    /// Labels the selected pool positions (indices into the pool most
    /// recently returned by [`ActiveLearner::pool`]), adds them to the
    /// training set, retrains, and removes them from the unlabeled pool.
    fn label_and_train(&mut self, selection: &[usize], rng: &mut StdRng);

    /// Evaluates the current model on the held-out test set (mAP or
    /// accuracy, in the unit the experiment reports).
    fn evaluate(&mut self) -> f64;
}

/// One round's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// 1-based round index.
    pub round: usize,
    /// How many points were actually labeled this round.
    pub labeled: usize,
    /// The evaluation metric after retraining.
    pub metric: f64,
}

/// Runs `rounds` rounds of batch active learning: score pool → select
/// `budget` points → label & retrain → evaluate (the protocol of §5.4:
/// "data points that have been collected [are] labeled in bulk").
///
/// Returns one [`RoundRecord`] per round.
pub fn run_rounds<L: ActiveLearner + ?Sized, S: SelectionStrategy + ?Sized>(
    learner: &mut L,
    strategy: &mut S,
    rounds: usize,
    budget: usize,
    rng: &mut StdRng,
) -> Vec<RoundRecord> {
    let mut records = Vec::with_capacity(rounds);
    for round in 1..=rounds {
        let pool = learner.pool();
        let selection = strategy.select(&pool, budget, rng);
        learner.label_and_train(&selection, rng);
        let metric = learner.evaluate();
        records.push(RoundRecord {
            round,
            labeled: selection.len(),
            metric,
        });
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BalStrategy, FallbackPolicy, RandomStrategy};
    use rand::SeedableRng;

    /// A toy learner: 100 points, 20 of them "hard" (flagged by one
    /// assertion). The metric is the fraction of hard points labeled, and
    /// labeling a hard point "fixes" it (it stops firing) — a miniature of
    /// the real dynamics.
    struct ToyLearner {
        hard: Vec<bool>,
        labeled: Vec<bool>,
    }

    impl ToyLearner {
        fn new() -> Self {
            Self {
                hard: (0..100).map(|i| i % 5 == 0).collect(),
                labeled: vec![false; 100],
            }
        }

        /// Global indices of still-unlabeled points.
        fn unlabeled(&self) -> Vec<usize> {
            (0..100).filter(|&i| !self.labeled[i]).collect()
        }
    }

    impl ActiveLearner for ToyLearner {
        fn pool(&mut self) -> CandidatePool {
            let idx = self.unlabeled();
            let severities = idx
                .iter()
                .map(|&i| vec![if self.hard[i] { 1.0 } else { 0.0 }])
                .collect();
            let uncertainties = vec![0.5; idx.len()];
            CandidatePool::new(severities, uncertainties).unwrap()
        }

        fn label_and_train(&mut self, selection: &[usize], _rng: &mut StdRng) {
            let idx = self.unlabeled();
            for &pos in selection {
                self.labeled[idx[pos]] = true;
            }
        }

        fn evaluate(&mut self) -> f64 {
            let fixed = (0..100)
                .filter(|&i| self.hard[i] && self.labeled[i])
                .count();
            fixed as f64 / 20.0
        }
    }

    #[test]
    fn runner_produces_one_record_per_round() {
        let mut learner = ToyLearner::new();
        let mut strategy = RandomStrategy;
        let mut rng = StdRng::seed_from_u64(3);
        let records = run_rounds(&mut learner, &mut strategy, 4, 10, &mut rng);
        assert_eq!(records.len(), 4);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.round, i + 1);
            assert_eq!(r.labeled, 10);
        }
        // Metric is monotone for this toy.
        for w in records.windows(2) {
            assert!(w[1].metric >= w[0].metric);
        }
    }

    #[test]
    fn assertion_guided_selection_beats_random_on_the_toy() {
        let run = |strategy: &mut dyn SelectionStrategy| {
            let mut learner = ToyLearner::new();
            let mut rng = StdRng::seed_from_u64(7);
            let records = run_rounds(&mut learner, strategy, 2, 10, &mut rng);
            records.last().unwrap().metric
        };
        let random = run(&mut RandomStrategy);
        let bal = run(&mut BalStrategy::new(FallbackPolicy::Random));
        assert!(
            bal > random,
            "BAL should label hard points faster: bal {bal} vs random {random}"
        );
        // BAL's first round labels only flagged points: 10 of 20 hard.
        assert!(
            (bal - 1.0).abs() < 1e-9,
            "two BAL rounds fix all hard points: {bal}"
        );
    }

    #[test]
    fn pool_shrinks_as_labeling_proceeds() {
        let mut learner = ToyLearner::new();
        let mut rng = StdRng::seed_from_u64(1);
        let p0 = learner.pool();
        assert_eq!(p0.len(), 100);
        learner.label_and_train(&[0, 1, 2], &mut rng);
        assert_eq!(learner.pool().len(), 97);
    }
}
