//! Property-based tests for the active-learning strategies.

use omg_active::{
    BalStrategy, CandidatePool, FallbackPolicy, RandomStrategy, SelectionStrategy, ThreadPool,
    UncertaintyStrategy, UniformAssertionStrategy,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_pool() -> impl Strategy<Value = CandidatePool> {
    (1usize..60, 1usize..4, any::<u64>()).prop_map(|(n, d, seed)| {
        // Deterministic pseudo-random severities from the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0
        };
        let severities: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..d)
                    .map(|_| {
                        let v = next();
                        if v < 0.6 {
                            0.0
                        } else {
                            v * 10.0
                        }
                    })
                    .collect()
            })
            .collect();
        let uncertainties: Vec<f64> = (0..n).map(|_| next()).collect();
        CandidatePool::new(severities, uncertainties).unwrap()
    })
}

fn check_selection(
    pool: &CandidatePool,
    budget: usize,
    sel: &[usize],
) -> Result<(), TestCaseError> {
    prop_assert!(sel.len() <= budget);
    prop_assert!(sel.iter().all(|&i| i < pool.len()), "out of range: {sel:?}");
    let mut sorted = sel.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    prop_assert_eq!(sorted.len(), sel.len(), "duplicates in selection");
    // Budget is met whenever the pool is big enough.
    if pool.len() >= budget {
        prop_assert_eq!(sel.len(), budget, "budget underused");
    } else {
        prop_assert_eq!(sel.len(), pool.len());
    }
    Ok(())
}

proptest! {
    #[test]
    fn random_selection_is_valid(pool in arb_pool(), budget in 1usize..30, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sel = RandomStrategy.select(&pool, budget, &mut rng);
        check_selection(&pool, budget, &sel)?;
    }

    #[test]
    fn uncertainty_selection_is_valid_and_sorted(pool in arb_pool(), budget in 1usize..30) {
        let mut rng = StdRng::seed_from_u64(0);
        let sel = UncertaintyStrategy.select(&pool, budget, &mut rng);
        check_selection(&pool, budget, &sel)?;
        for w in sel.windows(2) {
            prop_assert!(pool.uncertainty(w[0]) >= pool.uncertainty(w[1]));
        }
    }

    #[test]
    fn uniform_ma_selection_is_valid(pool in arb_pool(), budget in 1usize..30, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sel = UniformAssertionStrategy.select(&pool, budget, &mut rng);
        check_selection(&pool, budget, &sel)?;
    }

    #[test]
    fn bal_selection_is_valid_across_rounds(
        pool in arb_pool(), budget in 1usize..30, seed in 0u64..100, rounds in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bal = BalStrategy::new(FallbackPolicy::Random);
        for _ in 0..rounds {
            let sel = bal.select(&pool, budget, &mut rng);
            check_selection(&pool, budget, &sel)?;
        }
    }

    /// Parallel pool construction and scoring feed BAL the exact same
    /// inputs at any thread count, so same-seeded selections are
    /// identical across 1/2/8 threads and across rounds — the
    /// active-layer leg of the engine's determinism invariant.
    #[test]
    fn bal_selections_are_thread_count_invariant(
        pool in arb_pool(), budget in 1usize..20, seed in 0u64..100, rounds in 1usize..4,
    ) {
        // Rebuild the pool through the parallel constructor per thread
        // count; contexts must match bit-for-bit.
        let rebuild = |threads: usize| {
            CandidatePool::build_parallel(&ThreadPool::exact(threads), pool.len(), |i| {
                (pool.context(i).to_vec(), pool.uncertainty(i))
            })
            .unwrap()
        };
        let reference_pool = rebuild(1);
        let run = |p: &CandidatePool| {
            let mut bal = BalStrategy::new(FallbackPolicy::Uncertainty);
            let mut rng = StdRng::seed_from_u64(seed);
            (0..rounds).map(|_| bal.select(p, budget, &mut rng)).collect::<Vec<_>>()
        };
        let reference_sel = run(&reference_pool);
        for threads in [2usize, 8] {
            let p = rebuild(threads);
            prop_assert_eq!(&p, &reference_pool, "pool differs at {} threads", threads);
            prop_assert_eq!(run(&p), reference_sel.clone(), "selections differ at {} threads", threads);
            let scores = BalStrategy::new(FallbackPolicy::Uncertainty)
                .score_all(&p, &ThreadPool::exact(threads));
            prop_assert_eq!(
                scores,
                BalStrategy::new(FallbackPolicy::Uncertainty)
                    .score_all(&reference_pool, &ThreadPool::sequential())
            );
        }
    }

    #[test]
    fn bal_round_zero_prefers_flagged_points(pool in arb_pool(), seed in 0u64..100) {
        let flagged = pool.any_triggered();
        prop_assume!(!flagged.is_empty());
        let budget = flagged.len().min(5);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bal = BalStrategy::new(FallbackPolicy::Random);
        let sel = bal.select(&pool, budget, &mut rng);
        for &i in &sel {
            prop_assert!(
                flagged.contains(&i),
                "round 0 picked unflagged point {i} with flagged data available"
            );
        }
    }
}
