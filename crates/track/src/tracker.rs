use std::collections::BTreeMap;

use crate::track::{Observation, Track, TrackId};

/// Greedy IoU-based multi-object tracker.
///
/// On every [`update`](IouTracker::update), detections are associated to
/// live tracks by descending IoU against each track's most recent box; a
/// detection that matches no live track above `iou_threshold` starts a new
/// track. Tracks unseen for more than `max_age` frames are retired (but
/// retained for querying).
///
/// Association is class-agnostic on purpose: the paper's assertions are
/// precisely about objects whose *class labels* are inconsistent over
/// time, so the tracker must not use the class to decide identity.
#[derive(Debug, Clone)]
pub struct IouTracker {
    iou_threshold: f64,
    max_age: usize,
    next_id: u64,
    tracks: BTreeMap<TrackId, Track>,
    /// Tracks still eligible for association.
    live: Vec<TrackId>,
}

impl IouTracker {
    /// Creates a tracker.
    ///
    /// * `iou_threshold` — minimum IoU between a detection and a track's
    ///   last box for association (typical: `0.3`–`0.5`).
    /// * `max_age` — number of consecutive unseen frames after which a
    ///   track is retired; an age of `k` lets a track survive `k` missed
    ///   frames (this is what lets flickering objects keep one identity).
    ///
    /// # Panics
    ///
    /// Panics if `iou_threshold` is not in `(0, 1]`.
    pub fn new(iou_threshold: f64, max_age: usize) -> Self {
        assert!(
            iou_threshold > 0.0 && iou_threshold <= 1.0,
            "iou threshold must be in (0, 1], got {iou_threshold}"
        );
        Self {
            iou_threshold,
            max_age,
            next_id: 0,
            tracks: BTreeMap::new(),
            live: Vec::new(),
        }
    }

    /// Processes one frame of detections and returns the track id assigned
    /// to each detection, aligned with the input order.
    ///
    /// Frames must be fed in non-decreasing order.
    ///
    /// # Panics
    ///
    /// Panics if `frame` precedes an already-processed frame.
    pub fn update(&mut self, frame: usize, detections: &[Observation]) -> Vec<TrackId> {
        if let Some(last) = self.tracks.values().map(|t| t.last_frame()).max() {
            assert!(
                frame >= last || self.live.is_empty(),
                "frames must be processed in order (got {frame} after {last})"
            );
        }
        // Retire stale tracks first.
        // PANIC: every id in `live` is a key of `tracks` (inserted
        // together below, removed together in retire/remove).
        self.live.retain(|id| {
            let t = &self.tracks[id];
            frame.saturating_sub(t.last_frame()) <= self.max_age
        });

        // Candidate (iou, track_pos, det_idx) pairs via the spatial
        // matcher (grid-indexed in crowded frames, pairwise otherwise),
        // matched greedily by descending IoU. The sort is a total order:
        // `total_cmp` on the IoU keeps it NaN-safe and deterministic,
        // with (track_pos, det_idx) breaking exact ties.
        let track_boxes: Vec<omg_geom::BBox2D> = self
            .live
            .iter()
            // PANIC: live ids are always tracked (same invariant).
            .map(|id| self.tracks[id].latest().bbox)
            .collect();
        let det_boxes: Vec<omg_geom::BBox2D> = detections.iter().map(|d| d.bbox).collect();
        let mut pairs = omg_geom::matchers::iou_pairs(&track_boxes, &det_boxes, self.iou_threshold);
        pairs.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

        let mut track_taken = vec![false; self.live.len()];
        let mut det_assignment: Vec<Option<TrackId>> = vec![None; detections.len()];
        // PANIC: iou_pairs returns (iou, ti, di) with ti < track_boxes
        // .len() = live.len() and di < det_boxes.len() = detections
        // .len(), so every subscript below is in bounds.
        for (_, ti, di) in pairs {
            if track_taken[ti] || det_assignment[di].is_some() {
                continue;
            }
            track_taken[ti] = true;
            det_assignment[di] = Some(self.live[ti]);
        }

        let mut out = Vec::with_capacity(detections.len());
        // PANIC: di < detections.len(); assigned ids are live, and live
        // ids are always tracked.
        for (di, det) in detections.iter().enumerate() {
            let id = match det_assignment[di] {
                Some(id) => {
                    self.tracks
                        .get_mut(&id)
                        .expect("live track exists")
                        .record(frame, *det);
                    id
                }
                None => {
                    let id = TrackId(self.next_id);
                    self.next_id += 1;
                    self.tracks.insert(id, Track::new(id, frame, *det));
                    self.live.push(id);
                    id
                }
            };
            out.push(id);
        }
        out
    }

    /// All tracks ever created, in id order.
    pub fn tracks(&self) -> impl Iterator<Item = &Track> {
        self.tracks.values()
    }

    /// The track with the given id, if it exists.
    pub fn track(&self, id: TrackId) -> Option<&Track> {
        self.tracks.get(&id)
    }

    /// Number of tracks ever created.
    pub fn num_tracks(&self) -> usize {
        self.tracks.len()
    }

    /// Consumes the tracker and returns all tracks in id order.
    pub fn into_tracks(self) -> Vec<Track> {
        self.tracks.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omg_geom::BBox2D;

    fn obs(x: f64, y: f64) -> Observation {
        Observation {
            bbox: BBox2D::new(x, y, x + 10.0, y + 10.0).unwrap(),
            class: 0,
            score: 0.9,
        }
    }

    #[test]
    fn single_object_keeps_one_id() {
        let mut tr = IouTracker::new(0.3, 2);
        let mut ids = Vec::new();
        for f in 0..10 {
            ids.push(tr.update(f, &[obs(f as f64, 0.0)])[0]);
        }
        assert!(ids.iter().all(|&i| i == ids[0]));
        assert_eq!(tr.num_tracks(), 1);
    }

    #[test]
    fn two_separated_objects_get_distinct_ids() {
        let mut tr = IouTracker::new(0.3, 2);
        let ids = tr.update(0, &[obs(0.0, 0.0), obs(100.0, 100.0)]);
        assert_ne!(ids[0], ids[1]);
        let ids2 = tr.update(1, &[obs(1.0, 0.0), obs(101.0, 100.0)]);
        assert_eq!(ids[0], ids2[0]);
        assert_eq!(ids[1], ids2[1]);
    }

    #[test]
    fn flickering_object_survives_within_max_age() {
        let mut tr = IouTracker::new(0.3, 2);
        let a = tr.update(0, &[obs(0.0, 0.0)])[0];
        tr.update(1, &[]); // missed frame
        let b = tr.update(2, &[obs(1.0, 0.0)])[0];
        assert_eq!(a, b, "track should survive a 1-frame flicker");
        let track = tr.track(a).unwrap();
        assert_eq!(track.gap_frames(), vec![1]);
    }

    #[test]
    fn object_re_id_after_max_age() {
        let mut tr = IouTracker::new(0.3, 1);
        let a = tr.update(0, &[obs(0.0, 0.0)])[0];
        tr.update(1, &[]);
        tr.update(2, &[]);
        let b = tr.update(3, &[obs(0.0, 0.0)])[0];
        assert_ne!(a, b, "a long disappearance must start a new track");
        assert_eq!(tr.num_tracks(), 2);
    }

    #[test]
    fn greedy_matching_prefers_higher_iou() {
        let mut tr = IouTracker::new(0.1, 2);
        let ids = tr.update(0, &[obs(0.0, 0.0), obs(8.0, 0.0)]);
        // Next frame: one box exactly on the first, one shifted.
        let ids2 = tr.update(1, &[obs(0.0, 0.0), obs(8.5, 0.0)]);
        assert_eq!(ids[0], ids2[0]);
        assert_eq!(ids[1], ids2[1]);
    }

    #[test]
    fn class_changes_do_not_break_identity() {
        let mut tr = IouTracker::new(0.3, 2);
        let a = tr.update(
            0,
            &[Observation {
                bbox: BBox2D::new(0.0, 0.0, 10.0, 10.0).unwrap(),
                class: 0,
                score: 0.9,
            }],
        )[0];
        let b = tr.update(
            1,
            &[Observation {
                bbox: BBox2D::new(0.5, 0.0, 10.5, 10.0).unwrap(),
                class: 1, // class flipped: the assertion target
                score: 0.9,
            }],
        )[0];
        assert_eq!(a, b);
        assert_eq!(tr.track(a).unwrap().distinct_classes(), 2);
    }

    #[test]
    fn simultaneous_objects_never_merge() {
        let mut tr = IouTracker::new(0.3, 2);
        for f in 0..5 {
            let ids = tr.update(f, &[obs(0.0, 0.0), obs(50.0, 0.0)]);
            assert_ne!(ids[0], ids[1]);
        }
        assert_eq!(tr.num_tracks(), 2);
    }

    #[test]
    fn into_tracks_returns_everything() {
        let mut tr = IouTracker::new(0.3, 2);
        tr.update(0, &[obs(0.0, 0.0), obs(100.0, 0.0)]);
        let tracks = tr.into_tracks();
        assert_eq!(tracks.len(), 2);
    }

    #[test]
    #[should_panic(expected = "iou threshold")]
    fn zero_threshold_rejected() {
        IouTracker::new(0.0, 2);
    }

    #[test]
    fn tie_breaking_is_deterministic() {
        // Two tracks with *identical* last boxes compete for one
        // detection: the greedy matcher's total-order sort must always
        // hand it to the earlier live track, every run. (Regression test
        // for the old `partial_cmp(..).unwrap_or(Equal)` sort, whose
        // tie behavior was an accident of sort stability.)
        for _ in 0..10 {
            let mut tr = IouTracker::new(0.3, 2);
            let ids = tr.update(0, &[obs(0.0, 0.0), obs(0.0, 0.0)]);
            let ids2 = tr.update(1, &[obs(0.0, 0.0)]);
            assert_eq!(ids2[0], ids[0], "exact tie goes to the first live track");
        }
    }

    #[test]
    fn crowded_frame_matches_reference_association() {
        // A frame dense enough to clear the indexed-matcher cutoff must
        // associate identically under both backends.
        use omg_geom::matchers::{with_backend, MatchBackend};
        let frame0: Vec<Observation> = (0..140)
            .map(|i| obs(f64::from(i % 8) * 15.0, f64::from(i / 8) * 15.0))
            .collect();
        let frame1: Vec<Observation> = frame0
            .iter()
            .map(|o| Observation {
                bbox: o.bbox.translated(1.0, 0.5),
                ..*o
            })
            .collect();
        let run = || {
            let mut tr = IouTracker::new(0.3, 2);
            tr.update(0, &frame0);
            tr.update(1, &frame1)
        };
        let indexed = with_backend(MatchBackend::Indexed, run);
        let reference = with_backend(MatchBackend::Reference, run);
        assert_eq!(indexed, reference);
        assert_eq!(indexed.len(), 140);
    }
}
