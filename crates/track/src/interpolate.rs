use omg_geom::BBox2D;

use crate::track::Track;

/// Fills a track's gap frames by linear interpolation between the nearest
/// observed boxes on either side.
///
/// Returns `(frame, interpolated_box)` pairs for every gap frame, in frame
/// order. This is the default `WeakLabel` synthesis for temporal
/// consistency violations: the paper proposes new boxes for flickered-out
/// frames by "averaging the locations of the object on nearby video
/// frames" (§4.2, Figure 1 bottom row).
pub fn interpolate_gaps(track: &Track) -> Vec<(usize, BBox2D)> {
    let observed: Vec<(usize, BBox2D)> = track.iter().map(|(f, o)| (f, o.bbox)).collect();
    let mut out = Vec::new();
    for w in observed.windows(2) {
        let (f0, b0) = w[0];
        let (f1, b1) = w[1];
        if f1 - f0 <= 1 {
            continue;
        }
        for f in (f0 + 1)..f1 {
            let t = (f - f0) as f64 / (f1 - f0) as f64;
            out.push((f, b0.lerp(&b1, t)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::track::{Observation, TrackId};

    fn obs(x: f64) -> Observation {
        Observation {
            bbox: BBox2D::new(x, 0.0, x + 10.0, 10.0).unwrap(),
            class: 0,
            score: 0.9,
        }
    }

    #[test]
    fn no_gaps_no_output() {
        let mut t = Track::new(TrackId(0), 0, obs(0.0));
        t.record(1, obs(1.0));
        assert!(interpolate_gaps(&t).is_empty());
    }

    #[test]
    fn single_gap_is_midpoint() {
        let mut t = Track::new(TrackId(0), 0, obs(0.0));
        t.record(2, obs(10.0));
        let filled = interpolate_gaps(&t);
        assert_eq!(filled.len(), 1);
        let (f, b) = filled[0];
        assert_eq!(f, 1);
        assert!((b.x1() - 5.0).abs() < 1e-12);
        assert!((b.x2() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn multi_frame_gap_is_evenly_spaced() {
        let mut t = Track::new(TrackId(0), 0, obs(0.0));
        t.record(4, obs(8.0));
        let filled = interpolate_gaps(&t);
        assert_eq!(filled.len(), 3);
        for (i, (f, b)) in filled.iter().enumerate() {
            assert_eq!(*f, i + 1);
            assert!((b.x1() - 2.0 * (i + 1) as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn multiple_gaps_all_filled() {
        let mut t = Track::new(TrackId(0), 0, obs(0.0));
        t.record(2, obs(2.0));
        t.record(5, obs(5.0));
        let filled = interpolate_gaps(&t);
        let frames: Vec<usize> = filled.iter().map(|&(f, _)| f).collect();
        assert_eq!(frames, vec![1, 3, 4]);
    }

    #[test]
    fn stationary_object_interpolates_in_place() {
        let mut t = Track::new(TrackId(0), 0, obs(7.0));
        t.record(3, obs(7.0));
        for (_, b) in interpolate_gaps(&t) {
            assert!((b.x1() - 7.0).abs() < 1e-12);
        }
    }
}
