use std::collections::BTreeMap;

use omg_geom::BBox2D;

/// Opaque identifier of a track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrackId(pub u64);

impl std::fmt::Display for TrackId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "track#{}", self.0)
    }
}

/// One per-frame observation of a tracked object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Observed bounding box.
    pub bbox: BBox2D,
    /// Class label attached to the box (detector output or human label).
    pub class: usize,
    /// Confidence score attached to the box.
    pub score: f64,
}

/// The lifetime of one tracked object: a sparse map from frame index to
/// observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    id: TrackId,
    observations: BTreeMap<usize, Observation>,
}

impl Track {
    /// Creates a track with a single initial observation.
    pub fn new(id: TrackId, frame: usize, obs: Observation) -> Self {
        let mut observations = BTreeMap::new();
        observations.insert(frame, obs);
        Self { id, observations }
    }

    /// The track's identifier.
    pub fn id(&self) -> TrackId {
        self.id
    }

    /// Records an observation at `frame`, replacing any existing one.
    pub fn record(&mut self, frame: usize, obs: Observation) {
        self.observations.insert(frame, obs);
    }

    /// First frame the object was observed in.
    pub fn first_frame(&self) -> usize {
        *self
            .observations
            .keys()
            .next()
            .expect("track is never empty")
    }

    /// Last frame the object was observed in.
    pub fn last_frame(&self) -> usize {
        // PANIC: Track::new records the first observation, and nothing
        // ever removes one, so the map is never empty.
        *self
            .observations
            .keys()
            .next_back()
            .expect("track is never empty")
    }

    /// Number of frames with observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Tracks always hold at least one observation, so this is always
    /// `false`; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Observation at `frame`, if any.
    pub fn at(&self, frame: usize) -> Option<&Observation> {
        self.observations.get(&frame)
    }

    /// Iterator over `(frame, observation)` in frame order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Observation)> {
        self.observations.iter().map(|(&f, o)| (f, o))
    }

    /// The most recent observation.
    pub fn latest(&self) -> &Observation {
        // PANIC: same non-empty invariant as last_frame.
        self.observations
            .values()
            .next_back()
            .expect("track is never empty")
    }

    /// Frame indices strictly inside the track's lifetime with no
    /// observation — the "flickered-out" frames.
    pub fn gap_frames(&self) -> Vec<usize> {
        let mut gaps = Vec::new();
        let frames: Vec<usize> = self.observations.keys().copied().collect();
        for w in frames.windows(2) {
            for f in (w[0] + 1)..w[1] {
                gaps.push(f);
            }
        }
        gaps
    }

    /// Majority class over all observations (ties broken toward the
    /// smaller class index). This is the "most common value" correction
    /// rule of §4.2.
    pub fn majority_class(&self) -> usize {
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for obs in self.observations.values() {
            *counts.entry(obs.class).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(c, _)| c)
            .expect("track is never empty")
    }

    /// Number of distinct classes observed.
    pub fn distinct_classes(&self) -> usize {
        let mut classes: Vec<usize> = self.observations.values().map(|o| o.class).collect();
        classes.sort_unstable();
        classes.dedup();
        classes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(x: f64, class: usize) -> Observation {
        Observation {
            bbox: BBox2D::new(x, 0.0, x + 10.0, 10.0).unwrap(),
            class,
            score: 0.9,
        }
    }

    #[test]
    fn lifetime_accessors() {
        let mut t = Track::new(TrackId(1), 5, obs(0.0, 0));
        t.record(9, obs(4.0, 0));
        t.record(7, obs(2.0, 0));
        assert_eq!(t.first_frame(), 5);
        assert_eq!(t.last_frame(), 9);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!(t.at(7).is_some());
        assert!(t.at(6).is_none());
        assert_eq!(t.latest().bbox.x1(), 4.0);
    }

    #[test]
    fn gap_frames_found() {
        let mut t = Track::new(TrackId(1), 0, obs(0.0, 0));
        t.record(1, obs(1.0, 0));
        t.record(4, obs(4.0, 0));
        t.record(5, obs(5.0, 0));
        assert_eq!(t.gap_frames(), vec![2, 3]);
    }

    #[test]
    fn no_gaps_for_contiguous_track() {
        let mut t = Track::new(TrackId(1), 0, obs(0.0, 0));
        t.record(1, obs(1.0, 0));
        t.record(2, obs(2.0, 0));
        assert!(t.gap_frames().is_empty());
    }

    #[test]
    fn majority_class_votes() {
        let mut t = Track::new(TrackId(1), 0, obs(0.0, 2));
        t.record(1, obs(1.0, 2));
        t.record(2, obs(2.0, 1));
        assert_eq!(t.majority_class(), 2);
        assert_eq!(t.distinct_classes(), 2);
    }

    #[test]
    fn majority_class_tie_breaks_to_smaller() {
        let mut t = Track::new(TrackId(1), 0, obs(0.0, 3));
        t.record(1, obs(1.0, 1));
        assert_eq!(t.majority_class(), 1);
    }

    #[test]
    fn iter_in_frame_order() {
        let mut t = Track::new(TrackId(1), 3, obs(3.0, 0));
        t.record(1, obs(1.0, 0));
        t.record(2, obs(2.0, 0));
        let frames: Vec<usize> = t.iter().map(|(f, _)| f).collect();
        assert_eq!(frames, vec![1, 2, 3]);
    }

    #[test]
    fn display_of_track_id() {
        assert_eq!(TrackId(7).to_string(), "track#7");
    }
}
