//! Multi-object tracking substrate.
//!
//! The paper's video consistency assertions need identifiers for detected
//! objects: "Because we lack a globally unique identifier (e.g., license
//! plate number) for each object, we can assign a new identifier for each
//! box that appears and assign the same identifier as it persists through
//! the video" (§4.1). [`IouTracker`] implements exactly that: greedy
//! IoU-based association of boxes across frames.
//!
//! The tracker also powers:
//!
//! * the human-label validation experiment (Appendix E), which "tracked
//!   objects across frames of a video using an automated method and
//!   verified that the same object in different frames had the same label";
//! * weak-label box imputation ([`interpolate_gaps`]), which fills
//!   flickered-out frames by interpolating "the locations of the object on
//!   nearby video frames" (§4.2).
//!
//! # Example
//!
//! ```
//! use omg_geom::BBox2D;
//! use omg_track::{IouTracker, Observation};
//!
//! let mut tracker = IouTracker::new(0.3, 3);
//! let car = |x: f64| Observation { bbox: BBox2D::new(x, 0.0, x + 10.0, 10.0).unwrap(), class: 0, score: 0.9 };
//! let ids0 = tracker.update(0, &[car(0.0)]);
//! let ids1 = tracker.update(1, &[car(2.0)]);
//! assert_eq!(ids0[0], ids1[0]); // same physical object, same track id
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Module split: `track` holds the data model ([`Track`], [`Observation`],
// [`TrackId`]); `tracker` holds the association algorithm ([`IouTracker`])
// that produces it. Similar names, deliberately distinct roles.
mod interpolate;
mod track;
mod tracker;

pub use interpolate::interpolate_gaps;
pub use track::{Observation, Track, TrackId};
pub use tracker::IouTracker;
