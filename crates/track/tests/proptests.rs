//! Property-based tests for the tracker.

use omg_geom::BBox2D;
use omg_track::{interpolate_gaps, IouTracker, Observation, Track, TrackId};
use proptest::prelude::*;

fn obs(x: f64, y: f64) -> Observation {
    Observation {
        bbox: BBox2D::new(x, y, x + 10.0, y + 10.0).unwrap(),
        class: 0,
        score: 0.9,
    }
}

proptest! {
    /// Two objects that stay far apart must never share a track id,
    /// regardless of their motion.
    #[test]
    fn far_apart_objects_never_merge(
        vx1 in -1.0f64..1.0, vx2 in -1.0f64..1.0, frames in 2usize..30,
    ) {
        let mut tr = IouTracker::new(0.2, 2);
        let mut ids_a = Vec::new();
        let mut ids_b = Vec::new();
        for f in 0..frames {
            let a = obs(f as f64 * vx1, 0.0);
            let b = obs(500.0 + f as f64 * vx2, 0.0);
            let ids = tr.update(f, &[a, b]);
            ids_a.push(ids[0]);
            ids_b.push(ids[1]);
        }
        for (&a, &b) in ids_a.iter().zip(&ids_b) {
            prop_assert_ne!(a, b);
        }
        // And each object keeps a consistent id (slow motion, big overlap).
        prop_assert!(ids_a.iter().all(|&i| i == ids_a[0]));
        prop_assert!(ids_b.iter().all(|&i| i == ids_b[0]));
    }

    /// Every detection fed to the tracker is assigned to exactly one track,
    /// and the number of tracks never exceeds the number of detections.
    #[test]
    fn assignment_is_total(
        dets_per_frame in proptest::collection::vec(0usize..4, 1..15),
    ) {
        let mut tr = IouTracker::new(0.3, 1);
        let mut total_dets = 0usize;
        for (f, &n) in dets_per_frame.iter().enumerate() {
            let dets: Vec<Observation> = (0..n)
                .map(|i| obs(i as f64 * 100.0, 0.0))
                .collect();
            let ids = tr.update(f, &dets);
            prop_assert_eq!(ids.len(), n);
            total_dets += n;
        }
        prop_assert!(tr.num_tracks() <= total_dets.max(1));
    }

    /// Interpolated gap boxes always lie within the hull of the two
    /// neighboring observations and cover exactly the gap frames.
    #[test]
    fn interpolation_fills_exactly_the_gaps(
        gap in 1usize..10, x0 in 0.0f64..100.0, x1 in 0.0f64..100.0,
    ) {
        let mut t = Track::new(TrackId(0), 0, obs(x0, 0.0));
        t.record(gap + 1, obs(x1, 0.0));
        let filled = interpolate_gaps(&t);
        prop_assert_eq!(filled.len(), gap);
        let hull = obs(x0, 0.0).bbox.union_bounds(&obs(x1, 0.0).bbox);
        for (f, b) in &filled {
            prop_assert!(*f >= 1 && *f <= gap);
            prop_assert!(hull.contains_box(b));
        }
    }
}
