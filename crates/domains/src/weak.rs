//! Weak-supervision rules (§4.2, Table 4).
//!
//! Consistency corrections become training data with no human in the
//! loop:
//!
//! * **video** ([`video_weak_batch`]) — flicker gaps become imputed boxes
//!   (interpolated from the track's neighbours, Figure 1 bottom row) and
//!   weak detection positives; blips become weak background examples;
//!   multibox clusters become weak duplicate-suppression examples; class
//!   dissent becomes majority-vote class corrections;
//! * **AV** ([`av_weak_batch`]) — "a custom weak supervision rule that
//!   imputed boxes from the 3D predictions" (§5.1): unmatched LIDAR
//!   projections become weak camera-detection positives;
//! * **ECG** ([`ecg_weak_labels`]) — rhythm blips shorter than the 30 s
//!   guideline are relabeled with the surrounding rhythm (the majority /
//!   persistence correction).
//!
//! Appearance lookups (`signal_near`) model cropping the image patch at a
//! proposed box: the pixels exist even where the detector missed.

use omg_core::consistency::{ConsistencyEngine, ConsistencyWindow, Correction};
use omg_geom::BBox2D;
use omg_sim::av::AvSample;
use omg_sim::detector::{Detection, TrainingBatch};
use omg_sim::traffic::GtFrame;
use omg_sim::ObjectSignal;

use crate::helpers::{no_overlap, TrackedBox, VideoTrackSpec};
use crate::multibox::MULTIBOX_IOU;
use crate::{VideoFrame, VideoWindow};

/// Configuration of the video weak-supervision rule.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoWeakConfig {
    /// Temporal threshold `T` (seconds) for flicker/blip corrections.
    pub temporal_threshold: f64,
    /// Weight given to weak examples (below 1: weak labels are noisy).
    pub weight: f64,
    /// Whether `Remove` corrections on blips become weak *background*
    /// examples. Off by default: a blip can be a real object the detector
    /// missed on the surrounding frames, and teaching the detector to
    /// abstain there is actively harmful — the paper's video rule only
    /// *adds* boxes (750 flicker frames, §5.5).
    pub remove_blips: bool,
}

impl Default for VideoWeakConfig {
    fn default() -> Self {
        Self {
            temporal_threshold: 0.45,
            weight: 0.5,
            remove_blips: false,
        }
    }
}

/// The signal whose ground-truth box best overlaps `bbox` — the simulated
/// equivalent of cropping the image at a proposed box.
fn signal_near<'a>(signals: &'a [ObjectSignal], bbox: &BBox2D) -> Option<&'a ObjectSignal> {
    signals
        .iter()
        .map(|s| (s, s.bbox.iou(bbox)))
        .filter(|&(_, iou)| iou >= 0.1)
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(s, _)| s)
}

/// Interpolates a missing box for track `id` at invocation `ti` from its
/// nearest observations on either side (the default `WeakLabel` function
/// for temporal violations).
fn interpolate_track_box(
    window: &ConsistencyWindow<TrackedBox>,
    id: &u64,
    ti: usize,
) -> Option<TrackedBox> {
    let find = |range: Box<dyn Iterator<Item = usize>>| -> Option<(usize, TrackedBox)> {
        for i in range {
            if let Some(tb) = window.outputs_at(i).iter().find(|o| o.track == *id) {
                return Some((i, tb.clone()));
            }
        }
        None
    };
    let (bi, before) = find(Box::new((0..ti).rev()))?;
    let (ai, after) = find(Box::new(ti + 1..window.len()))?;
    let span = window.time(ai) - window.time(bi);
    if span <= 0.0 {
        return None;
    }
    let frac = (window.time(ti) - window.time(bi)) / span;
    Some(TrackedBox {
        track: *id,
        class: before.class,
        bbox: before.bbox.lerp(&after.bbox, frac),
    })
}

/// Builds a weak-supervision training batch from a video segment: the
/// ground-truth frames supply appearances ("image patches"), the
/// detections supply everything else.
///
/// # Panics
///
/// Panics if the two slices differ in length.
pub fn video_weak_batch(
    gt_frames: &[GtFrame],
    dets: &[Vec<Detection>],
    config: &VideoWeakConfig,
) -> TrainingBatch {
    assert_eq!(gt_frames.len(), dets.len(), "frames/detections mismatch");
    let mut batch = TrainingBatch::new();
    if gt_frames.is_empty() {
        return batch;
    }

    // Track the detections over the whole segment.
    let frames: Vec<VideoFrame> = gt_frames
        .iter()
        .zip(dets)
        .map(|(g, d)| VideoFrame {
            index: g.index,
            time: g.time,
            dets: d.iter().map(|x| x.scored).collect(),
        })
        .collect();
    let window = VideoWindow::new(frames, 0);
    let tracked = crate::helpers::track_window(&window);

    let engine =
        ConsistencyEngine::new(VideoTrackSpec).with_temporal_threshold(config.temporal_threshold);
    for correction in engine.corrections(&tracked, interpolate_track_box) {
        match correction {
            Correction::Add {
                time_index, output, ..
            } => {
                if let Some(signal) = signal_near(&gt_frames[time_index].signals, &output.bbox) {
                    batch.add_weak_box(signal.appearance.clone(), output.class, config.weight);
                }
            }
            Correction::Remove {
                time_index,
                output_index,
                ..
            } => {
                if !config.remove_blips {
                    continue;
                }
                let bbox = tracked.outputs_at(time_index)[output_index].bbox;
                if let Some(signal) = signal_near(&gt_frames[time_index].signals, &bbox) {
                    batch.add_weak_background(signal.appearance.clone(), config.weight);
                }
            }
            Correction::SetAttr {
                time_index,
                output_index,
                value,
                ..
            } => {
                let bbox = tracked.outputs_at(time_index)[output_index].bbox;
                if let (Some(signal), Some(class)) = (
                    signal_near(&gt_frames[time_index].signals, &bbox),
                    value.as_int(),
                ) {
                    batch.add_weak_class(signal.appearance.clone(), class as usize, config.weight);
                }
            }
        }
    }

    // Multibox clusters: suppress everything but the best-scored box of
    // each overlapping same-class pair group.
    for (gt, frame_dets) in gt_frames.iter().zip(dets) {
        for (i, di) in frame_dets.iter().enumerate() {
            let overlapping_better = frame_dets.iter().enumerate().any(|(j, dj)| {
                j != i
                    && dj.scored.class == di.scored.class
                    && dj.scored.bbox.iou(&di.scored.bbox) >= MULTIBOX_IOU
                    && (dj.scored.score, j) > (di.scored.score, i)
            });
            if overlapping_better {
                if let Some(signal) = signal_near(&gt.signals, &di.scored.bbox) {
                    batch.add_weak_remove(signal.appearance.clone(), config.weight);
                }
            }
        }
    }
    batch
}

/// Builds a weak-supervision batch for the AV camera model: every LIDAR
/// detection whose projection matches no camera detection becomes a weak
/// camera positive at that location (class 0, "vehicle" — the paper's AV
/// task detects vehicles only).
///
/// # Panics
///
/// Panics if the two slices differ in length.
pub fn av_weak_batch(
    samples: &[AvSample],
    camera_dets: &[Vec<Detection>],
    weight: f64,
) -> TrainingBatch {
    assert_eq!(
        samples.len(),
        camera_dets.len(),
        "samples/detections mismatch"
    );
    let mut batch = TrainingBatch::new();
    for (sample, dets) in samples.iter().zip(camera_dets) {
        let camera_boxes: Vec<BBox2D> = dets.iter().map(|d| d.scored.bbox).collect();
        for lidar in &sample.lidar {
            let Some(projected) = sample.camera.project_box(&lidar.bbox) else {
                continue;
            };
            if no_overlap(&projected, camera_boxes.iter(), 0.1) {
                if let Some(signal) = signal_near(&sample.signals, &projected) {
                    batch.add_weak_box(signal.appearance.clone(), 0, weight);
                }
            }
        }
    }
    batch
}

/// Weak labels for ECG predictions: every interior run of a class shorter
/// than `t_secs`, with the *same* class on both sides and at least two
/// consecutive agreeing predictions on each side (so the surrounding
/// rhythm call is itself well-evidenced), is relabeled to the surrounding
/// class. Returns `(index, corrected_class)` pairs.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn ecg_weak_labels(times: &[f64], preds: &[usize], t_secs: f64) -> Vec<(usize, usize)> {
    assert_eq!(times.len(), preds.len(), "times/preds mismatch");
    let n = preds.len();
    let mut out = Vec::new();
    if n < 3 {
        return out;
    }
    // run_len[i] = length of the maximal constant run containing i.
    let mut run_len = vec![0usize; n];
    let mut start = 0usize;
    for i in 1..=n {
        if i == n || preds[i] != preds[start] {
            for r in run_len.iter_mut().take(i).skip(start) {
                *r = i - start;
            }
            start = i;
        }
    }
    let mut start = 0usize;
    for i in 1..=n {
        if i == n || preds[i] != preds[start] {
            let end = i - 1;
            // Interior run, matching neighbours, both evidenced by runs
            // of at least two windows.
            if start > 0
                && i < n
                && preds[start - 1] == preds[i]
                && run_len[start - 1] >= 2
                && run_len[i] >= 2
            {
                let duration = times[i] - times[start];
                if duration < t_secs {
                    for idx in start..=end {
                        out.push((idx, preds[start - 1]));
                    }
                }
            }
            start = i;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use omg_sim::av::{AvConfig, AvWorld};
    use omg_sim::detector::{DetectorConfig, SimDetector};
    use omg_sim::traffic::{TrafficConfig, TrafficWorld};

    #[test]
    fn ecg_weak_labels_fix_blips() {
        let times: Vec<f64> = (0..7).map(|i| i as f64 * 10.0).collect();
        let preds = vec![0, 0, 1, 0, 0, 0, 0];
        let weak = ecg_weak_labels(&times, &preds, 30.0);
        assert_eq!(weak, vec![(2, 0)]);
    }

    #[test]
    fn ecg_weak_labels_leave_long_runs() {
        let times: Vec<f64> = (0..10).map(|i| i as f64 * 10.0).collect();
        let preds = vec![0, 0, 1, 1, 1, 1, 0, 0, 0, 0];
        // The class-1 run spans 40 s > 30 s: no correction.
        assert!(ecg_weak_labels(&times, &preds, 30.0).is_empty());
    }

    #[test]
    fn ecg_weak_labels_require_matching_neighbours() {
        let times: Vec<f64> = (0..7).map(|i| i as f64 * 10.0).collect();
        // A-run, blip of C, B-run: neighbours differ -> ambiguous, skip.
        let preds = vec![0, 0, 0, 2, 1, 1, 1];
        assert!(ecg_weak_labels(&times, &preds, 30.0).is_empty());
    }

    #[test]
    fn ecg_weak_labels_require_evidenced_neighbours() {
        let times: Vec<f64> = (0..5).map(|i| i as f64 * 10.0).collect();
        // Matching neighbours but each is a single window: not enough
        // evidence that the surrounding rhythm call is right.
        let preds = vec![2, 0, 1, 0, 2];
        assert!(ecg_weak_labels(&times, &preds, 30.0).is_empty());
    }

    #[test]
    fn video_weak_batch_generates_examples_on_night_traffic() {
        let mut world = TrafficWorld::new(TrafficConfig::night_street(), 3);
        let frames = world.steps(300);
        let detector = SimDetector::pretrained(DetectorConfig::default(), 1);
        let dets: Vec<Vec<Detection>> = frames
            .iter()
            .map(|f| detector.detect_frame(f.index, &f.signals))
            .collect();
        let batch = video_weak_batch(&frames, &dets, &VideoWeakConfig::default());
        assert!(
            !batch.is_empty(),
            "a flickery night detector must produce weak labels"
        );
        assert!(batch.len_det() > 0, "expected weak det examples");
    }

    #[test]
    fn av_weak_batch_imputes_from_lidar() {
        let world = AvWorld::new(AvConfig::default(), 7);
        let detector = SimDetector::pretrained(DetectorConfig::default(), 1);
        let mut total = 0usize;
        for scene in 0..10u64 {
            let samples = world.scene(scene);
            let dets: Vec<Vec<Detection>> = samples
                .iter()
                .map(|s| detector.detect_frame(scene * 1000 + s.index as u64, &s.signals))
                .collect();
            let batch = av_weak_batch(&samples, &dets, 0.5);
            total += batch.len_det();
        }
        assert!(
            total > 5,
            "camera misses with LIDAR hits should impute boxes: {total}"
        );
    }

    #[test]
    fn interpolation_requires_both_sides() {
        let mut window = ConsistencyWindow::new();
        let tb = |x: f64| TrackedBox {
            track: 1,
            class: 0,
            bbox: BBox2D::new(x, 0.0, x + 10.0, 10.0).unwrap(),
        };
        window.push(0.0, vec![tb(0.0)]);
        window.push(1.0, vec![]);
        window.push(2.0, vec![tb(10.0)]);
        let mid = interpolate_track_box(&window, &1, 1).unwrap();
        assert!((mid.bbox.x1() - 5.0).abs() < 1e-9);
        // No observation after the gap: no interpolation.
        let mut half = ConsistencyWindow::new();
        half.push(0.0, vec![tb(0.0)]);
        half.push(1.0, vec![]);
        assert!(interpolate_track_box(&half, &1, 1).is_none());
    }

    #[test]
    fn signal_near_breaks_equal_overlap_ties_by_last_candidate() {
        let bbox = omg_geom::BBox2D::new(0.0, 0.0, 10.0, 10.0).unwrap();
        let sig = |id: u64| ObjectSignal {
            track_id: id,
            true_class: 0,
            bbox,
            appearance: vec![],
            quality: 1.0,
        };
        // Equal IoU: `max_by` keeps the last maximal candidate, so the
        // winner is a function of input order alone, never float noise.
        assert_eq!(signal_near(&[sig(1), sig(2)], &bbox).unwrap().track_id, 2);
        assert_eq!(signal_near(&[sig(2), sig(1)], &bbox).unwrap().track_id, 1);
    }
}
