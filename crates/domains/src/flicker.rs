//! The `flicker` assertion (video analytics, Table 1).
//!
//! "Objects flicker in and out of the video" (Figure 1): a tracked object
//! that disappears and reappears within `T` seconds indicates missed
//! detections on the gap frames. Implemented with the consistency API
//! (§4): identifier = tracker-assigned track id, temporal threshold `T`;
//! this assertion counts the *gap-type* temporal violations.

use omg_core::consistency::{ConsistencyEngine, ConsistencyWindow, Violation};
use omg_core::{FnAssertion, Severity};

use crate::helpers::{track_window, TrackedBox, VideoTrackSpec};
use crate::VideoWindow;

// BEGIN ASSERTION
/// Counts the gap-type temporal violations on an already-tracked window —
/// the core of `flicker`, shared by the self-contained reference path
/// (which tracks the window itself) and the prepared streaming path
/// (which receives the window tracked once for the whole assertion set).
pub fn flicker_severity(tracked: &ConsistencyWindow<TrackedBox>, t: f64) -> Severity {
    let engine = ConsistencyEngine::new(VideoTrackSpec).with_temporal_threshold(t);
    let gaps = engine
        .check(tracked)
        .into_iter()
        .filter(|v| matches!(v, Violation::TemporalTransition { gap: true, .. }))
        .count();
    Severity::from_count(gaps)
}

/// Builds the `flicker` assertion with temporal threshold `t` seconds.
pub fn flicker_assertion(t: f64) -> FnAssertion<VideoWindow> {
    FnAssertion::new("flicker", move |window: &VideoWindow| {
        flicker_severity(&track_window(window), t)
    })
}
// END ASSERTION

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VideoFrame;
    use omg_core::Assertion;
    use omg_eval::ScoredBox;
    use omg_geom::BBox2D;

    fn frame(i: u64, present: bool) -> VideoFrame {
        let dets = if present {
            vec![ScoredBox {
                bbox: BBox2D::new(0.0, 0.0, 50.0, 50.0).unwrap(),
                class: 0,
                score: 0.9,
            }]
        } else {
            vec![]
        };
        VideoFrame {
            index: i,
            time: i as f64 * 0.1,
            dets,
        }
    }

    fn window(pattern: &[bool]) -> VideoWindow {
        let frames = pattern
            .iter()
            .enumerate()
            .map(|(i, &p)| frame(i as u64, p))
            .collect();
        VideoWindow::new(frames, pattern.len() / 2)
    }

    #[test]
    fn stable_object_does_not_fire() {
        let a = flicker_assertion(0.45);
        assert!(!a.check(&window(&[true, true, true, true, true])).fired());
    }

    #[test]
    fn single_frame_gap_fires() {
        let a = flicker_assertion(0.45);
        let sev = a.check(&window(&[true, true, false, true, true]));
        assert!(sev.fired(), "1-frame gap at 10 fps is a 0.2 s flicker");
        assert_eq!(sev.value(), 1.0);
    }

    #[test]
    fn blip_does_not_fire_flicker() {
        // appear-type violations belong to the `appear` assertion.
        let a = flicker_assertion(0.45);
        assert!(!a
            .check(&window(&[false, false, true, false, false]))
            .fired());
    }

    #[test]
    fn long_gap_does_not_fire() {
        // A gap longer than T is a legitimate departure (t = 0.25 s, the
        // 3-frame gap spans 0.4 s).
        let a = flicker_assertion(0.25);
        assert!(!a.check(&window(&[true, false, false, false, true])).fired());
    }

    #[test]
    fn two_flickering_objects_count_twice() {
        let mk = |x: f64| ScoredBox {
            bbox: BBox2D::new(x, 0.0, x + 50.0, 50.0).unwrap(),
            class: 0,
            score: 0.9,
        };
        let frames = vec![
            VideoFrame {
                index: 0,
                time: 0.0,
                dets: vec![mk(0.0), mk(500.0)],
            },
            VideoFrame {
                index: 1,
                time: 0.1,
                dets: vec![],
            },
            VideoFrame {
                index: 2,
                time: 0.2,
                dets: vec![mk(0.0), mk(500.0)],
            },
        ];
        let a = flicker_assertion(0.45);
        assert_eq!(a.check(&VideoWindow::new(frames, 1)).value(), 2.0);
    }
}
