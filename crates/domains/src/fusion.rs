//! The highway **multi-sensor fusion** assertions — the fifth deployed
//! scenario, built entirely from existing primitives to prove the
//! scenario engine's abstraction claim.
//!
//! Two independent 2D detectors (think a primary camera and a thermal /
//! radar-derived secondary channel) watch the same highway stream. Two
//! assertions monitor the primary model:
//!
//! * `fusion-agree` — the 2D analogue of the AV `agree` assertion
//!   (§2.1's `sensor_agreement`): count secondary boxes on the center
//!   frame that no primary detection overlaps. If it fires, at least one
//!   sensor is wrong.
//! * `fusion-flicker` — the video consistency assertion (§4) applied to
//!   the primary channel: a tracked object that disappears and
//!   reappears within `T` seconds indicates missed detections.
//!
//! The shared per-window preparation is the primary channel's tracked
//! window plus its consistency violations — exactly the artifact the
//! video set shares — so the streaming engine runs the tracker once per
//! window for the whole set.

use omg_core::consistency::{ConsistencyEngine, Violation};
use omg_core::stream::Prepare;
use omg_core::{AssertionSet, FnAssertion, Severity};
use omg_eval::ScoredBox;

use crate::helpers::{count_no_overlap, track_window, VideoTrackSpec};
use crate::{flicker, VideoFrame, VideoWindow};

/// IoU at or above which a secondary box counts as confirmed by a
/// primary detection (mirrors [`crate::agree::AGREE_IOU`]).
pub const FUSION_IOU: f64 = 0.10;

/// One time-aligned frame of both sensors' model outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionFrame {
    /// Frame index in the stream.
    pub index: u64,
    /// Timestamp in seconds.
    pub time: f64,
    /// The primary (monitored, trainable) detector's boxes.
    pub primary: Vec<ScoredBox>,
    /// The secondary (fixed) detector's boxes.
    pub secondary: Vec<ScoredBox>,
}

/// A short window of consecutive fusion frames — the sample type of the
/// fusion assertions, mirroring [`VideoWindow`].
#[derive(Debug, Clone, PartialEq)]
pub struct FusionWindow {
    /// Consecutive frames in time order.
    pub frames: Vec<FusionFrame>,
    /// Index (within `frames`) of the frame this window is *about*.
    pub center: usize,
}

impl FusionWindow {
    /// Builds a window.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty, `center` is out of range, or the
    /// timestamps are not strictly increasing.
    pub fn new(frames: Vec<FusionFrame>, center: usize) -> Self {
        assert!(!frames.is_empty(), "window needs at least one frame");
        assert!(center < frames.len(), "center out of range");
        // PANIC: windows(2) yields exactly-two-element slices.
        for w in frames.windows(2) {
            assert!(
                w[1].time > w[0].time,
                "frame timestamps must be strictly increasing"
            );
        }
        Self { frames, center }
    }

    /// The frame the window is centered on.
    pub fn center_frame(&self) -> &FusionFrame {
        // PANIC: center < frames.len() was asserted in new().
        &self.frames[self.center]
    }
}

/// Projects the window's primary channel as a [`VideoWindow`], the
/// sample type the video tracking/consistency machinery runs over.
pub fn primary_view(window: &FusionWindow) -> VideoWindow {
    let frames = window
        .frames
        .iter()
        .map(|f| VideoFrame {
            index: f.index,
            time: f.time,
            dets: f.primary.clone(),
        })
        .collect();
    VideoWindow::new(frames, window.center)
}

/// Counts secondary boxes on the center frame that no primary detection
/// overlaps — the core of `fusion-agree`, shared by the reference and
/// prepared paths.
pub fn fusion_agree_severity(frame: &FusionFrame) -> Severity {
    let primary_boxes: Vec<_> = frame.primary.iter().map(|d| d.bbox).collect();
    let secondary_boxes: Vec<_> = frame.secondary.iter().map(|s| s.bbox).collect();
    Severity::from_count(count_no_overlap(
        &secondary_boxes,
        &primary_boxes,
        FUSION_IOU,
    ))
}

/// Builds the `fusion-agree` assertion (cross-sensor agreement on the
/// window's center frame).
pub fn fusion_agree_assertion() -> FnAssertion<FusionWindow> {
    FnAssertion::new("fusion-agree", |w: &FusionWindow| {
        fusion_agree_severity(w.center_frame())
    })
}

/// Builds the `fusion-flicker` assertion: the video `flicker` severity
/// (gap-type temporal consistency violations at threshold `t` seconds)
/// over the primary channel.
pub fn fusion_flicker_assertion(t: f64) -> FnAssertion<FusionWindow> {
    FnAssertion::new("fusion-flicker", move |w: &FusionWindow| {
        flicker::flicker_severity(&track_window(&primary_view(w)), t)
    })
}

/// Registers the two fusion assertions on a fresh set, reference path.
pub fn fusion_assertion_set(flicker_t: f64) -> AssertionSet<FusionWindow> {
    let mut set = AssertionSet::new();
    set.add(fusion_agree_assertion());
    set.add(fusion_flicker_assertion(flicker_t));
    set
}

/// The fusion set's shared per-window artifact: the primary channel's
/// consistency violations at the preparer's temporal threshold (the
/// tracked window itself is only needed to compute them).
#[derive(Debug, Clone)]
pub struct FusionPrep {
    /// The temporal threshold the violations were computed at; carried
    /// so prepared checks can reject a preparer/set mismatch.
    pub t: f64,
    /// Consistency violations of the tracked primary channel.
    pub violations: Vec<Violation<u64>>,
}

/// Prepares a [`FusionWindow`]: one IoU-tracker run plus one consistency
/// check over the primary channel.
#[derive(Debug, Clone, Copy)]
pub struct FusionPrepare {
    t: f64,
}

impl FusionPrepare {
    /// Creates the preparer for a fusion set built with the same
    /// temporal threshold `t` (seconds).
    pub fn new(t: f64) -> Self {
        Self { t }
    }
}

impl Prepare<FusionWindow> for FusionPrepare {
    type Prepared = FusionPrep;

    fn prepare(&self, window: &FusionWindow) -> FusionPrep {
        let tracked = track_window(&primary_view(window));
        let engine = ConsistencyEngine::new(VideoTrackSpec).with_temporal_threshold(self.t);
        let violations = engine.check(&tracked);
        FusionPrep {
            t: self.t,
            violations,
        }
    }
}

/// The fusion assertion set with shared preparation: same assertions,
/// names, and severities as [`fusion_assertion_set`], but
/// `fusion-flicker` consumes one [`FusionPrep`] per window instead of
/// re-running the tracker (`fusion-agree` needs only the center frame
/// and keeps its plain check).
pub fn fusion_prepared_assertion_set(flicker_t: f64) -> AssertionSet<FusionWindow, FusionPrep> {
    let mut set = AssertionSet::new();
    set.add(fusion_agree_assertion());
    set.add_prepared(
        fusion_flicker_assertion(flicker_t),
        move |_w: &FusionWindow, prep: &FusionPrep| {
            assert!(
                prep.t == flicker_t,
                "fusion preparation threshold {} != assertion set threshold {flicker_t}",
                prep.t
            );
            let gaps = prep
                .violations
                .iter()
                .filter(|v| matches!(v, Violation::TemporalTransition { gap: true, .. }))
                .count();
            Severity::from_count(gaps)
        },
    );
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use omg_core::Assertion;
    use omg_geom::BBox2D;

    fn sb(x: f64, score: f64) -> ScoredBox {
        ScoredBox {
            bbox: BBox2D::new(x, 0.0, x + 50.0, 40.0).unwrap(),
            class: 0,
            score,
        }
    }

    fn frame(i: u64, primary: Vec<ScoredBox>, secondary: Vec<ScoredBox>) -> FusionFrame {
        FusionFrame {
            index: i,
            time: i as f64 * 0.1,
            primary,
            secondary,
        }
    }

    #[test]
    fn agreement_abstains_when_sensors_agree() {
        let w = FusionWindow::new(vec![frame(0, vec![sb(10.0, 0.9)], vec![sb(12.0, 0.8)])], 0);
        assert!(!fusion_agree_assertion().check(&w).fired());
    }

    #[test]
    fn primary_miss_fires_agreement_per_unmatched_box() {
        let w = FusionWindow::new(
            vec![frame(0, vec![], vec![sb(10.0, 0.8), sb(300.0, 0.7)])],
            0,
        );
        let sev = fusion_agree_assertion().check(&w);
        assert_eq!(sev.value(), 2.0);
    }

    #[test]
    fn primary_flicker_fires_through_the_fusion_view() {
        let frames = vec![
            frame(0, vec![sb(0.0, 0.9)], vec![]),
            frame(1, vec![], vec![]),
            frame(2, vec![sb(2.0, 0.9)], vec![]),
        ];
        let w = FusionWindow::new(frames, 1);
        let sev = fusion_flicker_assertion(0.45).check(&w);
        assert_eq!(sev.value(), 1.0, "a 0.2 s gap is a flicker at T=0.45 s");
    }

    #[test]
    fn prepared_set_mirrors_plain_set() {
        let plain = fusion_assertion_set(0.45);
        let prepared = fusion_prepared_assertion_set(0.45);
        assert_eq!(plain.names(), prepared.names());
        let agree = prepared.id_of("fusion-agree").unwrap();
        let flicker = prepared.id_of("fusion-flicker").unwrap();
        assert!(!prepared.has_prepared(agree), "agree needs no tracking");
        assert!(prepared.has_prepared(flicker));
        // Same severities through both paths on a flickering window.
        let frames = vec![
            frame(0, vec![sb(0.0, 0.9)], vec![sb(200.0, 0.8)]),
            frame(1, vec![], vec![]),
            frame(2, vec![sb(2.0, 0.9)], vec![]),
        ];
        let w = FusionWindow::new(frames, 1);
        let prep = FusionPrepare::new(0.45).prepare(&w);
        assert_eq!(prepared.check_all_prepared(&w, &prep), plain.check_all(&w));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn prepared_set_rejects_threshold_mismatch() {
        let prepared = fusion_prepared_assertion_set(0.45);
        let w = FusionWindow::new(vec![frame(0, vec![], vec![])], 0);
        let prep = FusionPrepare::new(0.9).prepare(&w);
        prepared.check_all_prepared(&w, &prep);
    }

    #[test]
    #[should_panic(expected = "center out of range")]
    fn bad_center_rejected() {
        FusionWindow::new(vec![frame(0, vec![], vec![])], 1);
    }
}
