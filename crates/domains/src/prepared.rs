//! Shared window preparation for the deployed assertion sets.
//!
//! Each deployed task has one expensive per-window derivation several of
//! its assertions (or its assertion plus the error analysis) need:
//!
//! | Task | Derivation | Artifact |
//! |---|---|---|
//! | Video | IoU tracking over the window | [`TrackedWindow`] |
//! | AVs | LIDAR→camera box projection | `Vec<BBox2D>` |
//! | ECG | prediction-run segmentation | `ConsistencyWindow<usize>` |
//! | TV news | per-slot face grouping | `ConsistencyWindow<NewsFace>` |
//!
//! The self-contained assertions in the sibling modules re-derive these
//! on every check — the reference semantics, and what the paper's Python
//! implementations do. The [`omg_core::stream::Prepare`]rs here derive
//! each artifact **once per window**, and the `*_prepared_assertion_set`
//! constructors register prepared-path checks that consume the shared
//! artifact via [`AssertionSet::check_all_prepared`]. Both paths are
//! bit-for-bit equal (enforced by the engine's equivalence property
//! tests); only the wall-clock differs — the video set, for example,
//! drops from three tracker runs per window to one.

use omg_core::consistency::{ConsistencyEngine, ConsistencyWindow, Violation};
use omg_core::stream::Prepare;
use omg_core::{AssertionSet, Severity};
use omg_geom::BBox2D;
use omg_sim::news::{NewsFace, NewsScene};

use crate::helpers::{track_window, TrackedBox, VideoTrackSpec};
use crate::{agree, AvFrame, EcgWindow, VideoWindow};
use crate::{appear, ecg, flicker, multibox, news};

/// A video window with tracker-assigned identities — the first stage of
/// the video set's shared artifact.
pub type TrackedWindow = ConsistencyWindow<TrackedBox>;

/// The video set's shared per-window artifact: the tracked window plus
/// the temporal-consistency violations at the set's threshold. `flicker`
/// and `appear` filter *opposite* transition types out of the same
/// violation list, so sharing it runs both the tracker and the
/// consistency engine once per window instead of once per assertion.
#[derive(Debug, Clone)]
pub struct VideoPrep {
    /// The temporal threshold the violations were computed at. Carried
    /// so the prepared checks can reject a preparer/set threshold
    /// mismatch instead of silently diverging from the reference path.
    pub t: f64,
    /// The tracked window.
    pub tracked: TrackedWindow,
    /// Consistency violations of the tracked window at the preparer's
    /// temporal threshold.
    pub violations: Vec<Violation<u64>>,
}

/// Prepares a [`VideoWindow`]: one IoU-tracker run plus one consistency
/// check (at temporal threshold `t`) over the window.
#[derive(Debug, Clone, Copy)]
pub struct VideoPrepare {
    t: f64,
}

impl VideoPrepare {
    /// Creates the preparer for a video set built with the same temporal
    /// threshold `t` (seconds).
    pub fn new(t: f64) -> Self {
        Self { t }
    }

    /// The temporal threshold.
    pub fn threshold(&self) -> f64 {
        self.t
    }
}

impl Prepare<VideoWindow> for VideoPrepare {
    type Prepared = VideoPrep;

    fn prepare(&self, window: &VideoWindow) -> VideoPrep {
        let tracked = track_window(window);
        let engine = ConsistencyEngine::new(VideoTrackSpec).with_temporal_threshold(self.t);
        let violations = engine.check(&tracked);
        VideoPrep {
            t: self.t,
            tracked,
            violations,
        }
    }
}

/// Counts the temporal-transition violations of one kind (`gap = true`
/// for flicker, `false` for appear) in a prepared violation list.
fn transition_count(violations: &[Violation<u64>], want_gap: bool) -> usize {
    violations
        .iter()
        .filter(|v| matches!(v, Violation::TemporalTransition { gap, .. } if *gap == want_gap))
        .count()
}

/// The video assertion set with shared preparation: same assertions,
/// names, and severities as [`crate::video_assertion_set`], but `flicker`
/// and `appear` consume one [`VideoPrep`] (tracking + consistency check)
/// per window instead of each re-deriving it (`multibox` needs neither
/// and keeps its plain check).
///
/// The prepared checks assert that the artifact was prepared at this
/// set's threshold — a [`VideoPrepare`] built with a different `t`
/// fails loudly on the first check instead of silently diverging from
/// the batch reference.
pub fn video_prepared_assertion_set(flicker_t: f64) -> AssertionSet<VideoWindow, VideoPrep> {
    let check_threshold = move |prep: &VideoPrep| {
        assert!(
            prep.t == flicker_t,
            "video preparation threshold {} != assertion set threshold {flicker_t}",
            prep.t
        );
    };
    let mut set = AssertionSet::new();
    set.add(multibox::multibox_assertion());
    set.add_prepared(
        flicker::flicker_assertion(flicker_t),
        move |_w: &VideoWindow, prep: &VideoPrep| {
            check_threshold(prep);
            Severity::from_count(transition_count(&prep.violations, true))
        },
    );
    set.add_prepared(
        appear::appear_assertion(flicker_t),
        move |_w: &VideoWindow, prep: &VideoPrep| {
            check_threshold(prep);
            Severity::from_count(transition_count(&prep.violations, false))
        },
    );
    set
}

/// Prepares an [`AvFrame`]: one LIDAR→camera projection pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct AvPrepare;

impl Prepare<AvFrame> for AvPrepare {
    type Prepared = Vec<BBox2D>;

    fn prepare(&self, frame: &AvFrame) -> Vec<BBox2D> {
        agree::project_lidar(frame)
    }
}

/// The AV assertion set with shared LIDAR projection, mirroring
/// [`crate::av_assertion_set`].
pub fn av_prepared_assertion_set() -> AssertionSet<AvFrame, Vec<BBox2D>> {
    let mut set = AssertionSet::new();
    set.add_prepared(
        agree::agree_assertion(),
        |frame: &AvFrame, projected: &Vec<BBox2D>| agree::agree_severity(frame, projected),
    );
    set.add(multibox::multibox_av_assertion());
    set
}

/// Prepares an [`EcgWindow`]: one segmentation of the prediction run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EcgPrepare;

impl Prepare<EcgWindow> for EcgPrepare {
    type Prepared = ConsistencyWindow<usize>;

    fn prepare(&self, window: &EcgWindow) -> ConsistencyWindow<usize> {
        ecg::ecg_segments(window)
    }
}

/// The ECG assertion set with shared segmentation, mirroring
/// [`crate::ecg_assertion_set`].
pub fn ecg_prepared_assertion_set() -> AssertionSet<EcgWindow, ConsistencyWindow<usize>> {
    let mut set = AssertionSet::new();
    set.add_prepared(
        ecg::ecg_assertion(),
        |_w: &EcgWindow, segments: &ConsistencyWindow<usize>| ecg::ecg_severity(segments),
    );
    set
}

/// Prepares a [`NewsScene`]: one per-slot face grouping.
#[derive(Debug, Clone, Copy, Default)]
pub struct NewsPrepare;

impl Prepare<NewsScene> for NewsPrepare {
    type Prepared = ConsistencyWindow<NewsFace>;

    fn prepare(&self, scene: &NewsScene) -> ConsistencyWindow<NewsFace> {
        news::scene_window(scene)
    }
}

/// The news assertion set with shared scene grouping: one
/// [`news::scene_window`] per scene shared by the assertion (and, in the
/// monitoring harness, the flagged-group analysis).
pub fn news_prepared_assertion_set() -> AssertionSet<NewsScene, ConsistencyWindow<NewsFace>> {
    let mut set = AssertionSet::new();
    set.add_prepared(
        news::news_assertion(),
        |_s: &NewsScene, window: &ConsistencyWindow<NewsFace>| news::news_severity(window),
    );
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use omg_sim::news::{NewsConfig, NewsWorld};

    #[test]
    fn prepared_sets_mirror_plain_sets() {
        assert_eq!(
            video_prepared_assertion_set(0.45).names(),
            crate::video_assertion_set(0.45).names()
        );
        assert_eq!(
            av_prepared_assertion_set().names(),
            crate::av_assertion_set().names()
        );
        assert_eq!(
            ecg_prepared_assertion_set().names(),
            crate::ecg_assertion_set().names()
        );
        assert_eq!(news_prepared_assertion_set().names(), vec!["news"]);
    }

    #[test]
    fn video_prepared_marks_tracking_consumers() {
        let set = video_prepared_assertion_set(0.45);
        let multibox = set.id_of("multibox").unwrap();
        let flicker = set.id_of("flicker").unwrap();
        let appear = set.id_of("appear").unwrap();
        assert!(!set.has_prepared(multibox), "multibox needs no tracking");
        assert!(set.has_prepared(flicker));
        assert!(set.has_prepared(appear));
    }

    #[test]
    fn news_prepared_matches_plain_on_world_scenes() {
        let world = NewsWorld::new(NewsConfig::default(), 5);
        let plain = news::news_assertion();
        let set = news_prepared_assertion_set();
        for scene in world.scenes(0..50) {
            let prep = NewsPrepare.prepare(&scene);
            let got = set.check_all_prepared(&scene, &prep);
            assert_eq!(got[0].1, omg_core::Assertion::check(&plain, &scene));
        }
    }
}
