//! The `agree` assertion (AVs, Table 1).
//!
//! "Our contacts at an AV company noticed that models from video and
//! point clouds can disagree. We implemented a model assertion that
//! projects the 3D boxes onto the 2D camera plane to check for
//! consistency. If the assertion triggers, then at least one of the
//! sensors returned an incorrect answer." (§2.2)
//!
//! The severity follows the paper's `sensor_agreement` example (§2.1):
//! the number of LIDAR boxes whose projection overlaps no camera box.

use omg_core::{FnAssertion, Severity};

use crate::helpers::count_no_overlap;
use crate::AvFrame;

/// IoU below which a projected LIDAR box counts as unmatched.
pub const AGREE_IOU: f64 = 0.10;

// BEGIN ASSERTION
/// Projects a frame's LIDAR boxes onto the camera plane, dropping boxes
/// outside the frustum (not comparable) — the per-frame derivation the
/// streaming engine prepares once and shares.
pub fn project_lidar(frame: &AvFrame) -> Vec<omg_geom::BBox2D> {
    frame
        .lidar_boxes
        .iter()
        .filter_map(|b| frame.camera.project_box(b))
        .collect()
}

/// Counts projected LIDAR boxes no camera detection overlaps — the core
/// of `agree`, shared by the reference and prepared paths.
pub fn agree_severity(frame: &AvFrame, projected: &[omg_geom::BBox2D]) -> Severity {
    let camera_boxes: Vec<_> = frame.camera_dets.iter().map(|d| d.bbox).collect();
    Severity::from_count(count_no_overlap(projected, &camera_boxes, AGREE_IOU))
}

/// Builds the `agree` assertion.
pub fn agree_assertion() -> FnAssertion<AvFrame> {
    FnAssertion::new("agree", |frame: &AvFrame| {
        agree_severity(frame, &project_lidar(frame))
    })
}
// END ASSERTION

#[cfg(test)]
mod tests {
    use super::*;
    use omg_core::Assertion;
    use omg_eval::ScoredBox;
    use omg_geom::{BBox3D, CameraIntrinsics, CameraModel, Vec3};

    fn camera() -> CameraModel {
        CameraModel::new(
            CameraIntrinsics::centered(1000.0, 1600.0, 900.0).unwrap(),
            Vec3::new(0.0, 0.0, 1.6),
            0.0,
        )
    }

    fn vehicle_at(x: f64, y: f64) -> BBox3D {
        BBox3D::new(Vec3::new(x, y, 0.8), Vec3::new(4.5, 1.9, 1.6), 0.0).unwrap()
    }

    fn frame(camera_dets: Vec<ScoredBox>, lidar_boxes: Vec<BBox3D>) -> AvFrame {
        AvFrame {
            time: 0.0,
            camera_dets,
            lidar_boxes,
            camera: camera(),
        }
    }

    #[test]
    fn agreement_does_not_fire() {
        let cam = camera();
        let v = vehicle_at(20.0, 0.0);
        let projected = cam.project_box(&v).unwrap();
        let det = ScoredBox {
            bbox: projected,
            class: 0,
            score: 0.9,
        };
        let a = agree_assertion();
        assert!(!a.check(&frame(vec![det], vec![v])).fired());
    }

    #[test]
    fn camera_miss_fires() {
        // LIDAR sees a vehicle, the camera has nothing there.
        let a = agree_assertion();
        let sev = a.check(&frame(vec![], vec![vehicle_at(20.0, 0.0)]));
        assert!(sev.fired());
        assert_eq!(sev.value(), 1.0);
    }

    #[test]
    fn out_of_frustum_lidar_boxes_are_skipped() {
        // A vehicle behind the ego cannot be checked against the camera.
        let a = agree_assertion();
        assert!(!a
            .check(&frame(vec![], vec![vehicle_at(-20.0, 0.0)]))
            .fired());
    }

    #[test]
    fn multiple_misses_accumulate() {
        let a = agree_assertion();
        let sev = a.check(&frame(
            vec![],
            vec![vehicle_at(15.0, -3.0), vehicle_at(25.0, 3.0)],
        ));
        assert_eq!(sev.value(), 2.0);
    }

    #[test]
    fn unrelated_camera_detection_does_not_satisfy_lidar() {
        let cam = camera();
        let far_left = cam.project_box(&vehicle_at(12.0, 6.0)).unwrap();
        let det = ScoredBox {
            bbox: far_left,
            class: 0,
            score: 0.9,
        };
        let a = agree_assertion();
        // LIDAR box on the right; camera detection far left.
        let sev = a.check(&frame(vec![det], vec![vehicle_at(12.0, -6.0)]));
        assert!(sev.fired());
    }
}
