//! The `multibox` assertion (video analytics and AVs, Table 1).
//!
//! "The multibox assertion fires when three boxes highly overlap"
//! (Figure 7): the visible parts of three same-class vehicles essentially
//! never coincide, so a tight triple is almost surely a duplicate-
//! detection error. A domain-knowledge assertion of the *unlikely
//! scenario* sub-class (Table 5).

use omg_core::{FnAssertion, Severity};

use crate::helpers::overlap_triples;
use crate::{AvFrame, VideoWindow};

/// IoU above which boxes count as "highly overlapping".
pub const MULTIBOX_IOU: f64 = 0.30;

// BEGIN ASSERTION
/// Builds the `multibox` assertion for video windows (checks the center
/// frame).
pub fn multibox_assertion() -> FnAssertion<VideoWindow> {
    FnAssertion::new("multibox", |window: &VideoWindow| {
        let dets = &window.center_frame().dets;
        Severity::from_count(overlap_triples(dets, MULTIBOX_IOU))
    })
}

/// Builds the `multibox` assertion for AV samples (checks the camera
/// detections).
pub fn multibox_av_assertion() -> FnAssertion<AvFrame> {
    FnAssertion::new("multibox", |frame: &AvFrame| {
        Severity::from_count(overlap_triples(&frame.camera_dets, MULTIBOX_IOU))
    })
}
// END ASSERTION

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VideoFrame;
    use omg_core::Assertion;
    use omg_eval::ScoredBox;
    use omg_geom::{BBox2D, CameraIntrinsics, CameraModel, Vec3};

    fn sb(x: f64, class: usize) -> ScoredBox {
        ScoredBox {
            bbox: BBox2D::new(x, 0.0, x + 20.0, 20.0).unwrap(),
            class,
            score: 0.9,
        }
    }

    fn vw(dets: Vec<ScoredBox>) -> VideoWindow {
        VideoWindow::new(
            vec![VideoFrame {
                index: 0,
                time: 0.0,
                dets,
            }],
            0,
        )
    }

    #[test]
    fn triple_cluster_fires() {
        let a = multibox_assertion();
        let sev = a.check(&vw(vec![sb(0.0, 0), sb(2.0, 0), sb(4.0, 0)]));
        assert!(sev.fired());
        assert_eq!(sev.value(), 1.0);
    }

    #[test]
    fn pair_does_not_fire() {
        let a = multibox_assertion();
        assert!(!a.check(&vw(vec![sb(0.0, 0), sb(2.0, 0)])).fired());
    }

    #[test]
    fn spread_boxes_do_not_fire() {
        let a = multibox_assertion();
        assert!(!a
            .check(&vw(vec![sb(0.0, 0), sb(100.0, 0), sb(200.0, 0)]))
            .fired());
    }

    #[test]
    fn av_variant_checks_camera_dets() {
        let a = multibox_av_assertion();
        let camera = CameraModel::new(
            CameraIntrinsics::centered(1000.0, 1600.0, 900.0).unwrap(),
            Vec3::new(0.0, 0.0, 1.6),
            0.0,
        );
        let frame = AvFrame {
            time: 0.0,
            camera_dets: vec![sb(0.0, 1), sb(2.0, 1), sb(4.0, 1)],
            lidar_boxes: vec![],
            camera,
        };
        assert!(a.check(&frame).fired());
    }
}
