//! The deployed assertions of the paper's evaluation, one per source file.
//!
//! Table 1 of the paper lists the assertions deployed per task:
//!
//! | Task | Assertions | Module |
//! |---|---|---|
//! | TV news | consistency over scene/identity/gender/hair | [`news`] |
//! | Video analytics | `multibox`, `flicker`, `appear` | [`multibox`], [`flicker`], [`appear`] |
//! | AVs | `agree`, `multibox` | [`agree`], [`multibox`] |
//! | ECG | 30-second consistency | [`ecg`] |
//!
//! A fifth scenario beyond the paper's four — highway multi-sensor
//! fusion (`fusion-agree`, `fusion-flicker`, module [`fusion`]) — is
//! composed from the same primitives to prove the abstraction transfers
//! to new deployment surfaces.
//!
//! Each assertion lives in its own file with `// BEGIN ASSERTION` /
//! `// END ASSERTION` markers around its core logic; the Table 2
//! experiment counts the non-blank, non-comment lines between the markers
//! (helper functions in [`helpers`] are counted separately and
//! double-counted per assertion, as the paper does).
//!
//! The crate also provides:
//!
//! * the window/sample types assertions run over ([`VideoWindow`],
//!   [`EcgWindow`]; AV assertions run on [`omg_sim::av::AvSample`]);
//! * [`weak`] — the weak-supervision rules (§4.2): flicker-gap box
//!   imputation, blip removal, duplicate suppression, LIDAR→camera box
//!   imputation, and ECG majority smoothing;
//! * [`label_check`] — the human-label validation pipeline (Appendix E);
//! * [`prepared`] — shared window preparation for the streaming engine:
//!   per-task `Prepare`rs (tracking, LIDAR projection, segmentation,
//!   scene grouping) and `*_prepared_assertion_set` constructors whose
//!   assertions consume one artifact per window instead of re-deriving
//!   it per assertion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agree;
pub mod appear;
pub mod ecg;
pub mod flicker;
pub mod fusion;
pub mod helpers;
pub mod label_check;
pub mod multibox;
pub mod news;
pub mod prepared;
pub mod weak;
mod window;

pub use fusion::{
    fusion_assertion_set, fusion_prepared_assertion_set, FusionFrame, FusionPrep, FusionPrepare,
    FusionWindow,
};
pub use prepared::{
    av_prepared_assertion_set, ecg_prepared_assertion_set, news_prepared_assertion_set,
    video_prepared_assertion_set, AvPrepare, EcgPrepare, NewsPrepare, TrackedWindow, VideoPrep,
    VideoPrepare,
};
pub use window::{AvFrame, EcgWindow, VideoFrame, VideoWindow};

use omg_core::AssertionSet;

/// Registers the three video-analytics assertions (`multibox`, `flicker`,
/// `appear`) on a fresh assertion set, in the paper's Table 1 order.
///
/// `flicker_t` is the temporal threshold `T` in seconds for the
/// consistency-generated assertions.
pub fn video_assertion_set(flicker_t: f64) -> AssertionSet<VideoWindow> {
    let mut set = AssertionSet::new();
    set.add(multibox::multibox_assertion());
    set.add(flicker::flicker_assertion(flicker_t));
    set.add(appear::appear_assertion(flicker_t));
    set
}

/// Registers the two AV assertions (`agree`, `multibox`) on a fresh
/// assertion set.
pub fn av_assertion_set() -> AssertionSet<AvFrame> {
    let mut set = AssertionSet::new();
    set.add(agree::agree_assertion());
    set.add(multibox::multibox_av_assertion());
    set
}

/// Registers the single ECG assertion on a fresh assertion set.
pub fn ecg_assertion_set() -> AssertionSet<EcgWindow> {
    let mut set = AssertionSet::new();
    set.add(ecg::ecg_assertion());
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compile-time audit for the parallel monitor runtime: every
    /// deployed window/sample type and every deployed assertion set must
    /// cross thread boundaries (`Monitor::process_batch` shares samples
    /// and assertions across scoped workers). The `Assertion` trait's
    /// `Send + Sync` supertraits enforce this for each assertion
    /// individually; these assertions pin it for the composed sets and
    /// the sample types they run over.
    #[test]
    fn deployed_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VideoFrame>();
        assert_send_sync::<VideoWindow>();
        assert_send_sync::<AvFrame>();
        assert_send_sync::<EcgWindow>();
        assert_send_sync::<AssertionSet<VideoWindow>>();
        assert_send_sync::<AssertionSet<AvFrame>>();
        assert_send_sync::<AssertionSet<EcgWindow>>();
        // The monitor itself is Send (hooks are `FnMut + Send`), though
        // not Sync — batch workers share only its assertion set.
        fn assert_send<T: Send>() {}
        assert_send::<omg_core::Monitor<VideoWindow>>();
    }

    #[test]
    fn video_set_has_papers_three_assertions() {
        let set = video_assertion_set(0.45);
        assert_eq!(set.names(), vec!["multibox", "flicker", "appear"]);
    }

    #[test]
    fn av_set_has_papers_two_assertions() {
        let set = av_assertion_set();
        assert_eq!(set.names(), vec!["agree", "multibox"]);
    }

    #[test]
    fn ecg_set_has_one_assertion() {
        let set = ecg_assertion_set();
        assert_eq!(set.names(), vec!["ecg"]);
    }
}
