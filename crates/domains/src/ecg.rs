//! The ECG assertion (medical classification, Table 1).
//!
//! "The European Society of Cardiology guidelines for detecting AF
//! require at least 30 seconds of signal before calling a detection.
//! Thus, predictions should not rapidly switch between two states"
//! (§2.2). Expressed through the consistency API with the *predicted
//! class as the identifier* and `T = 30 s` (§4.1): any class whose
//! presence in the prediction stream transitions twice within 30 seconds
//! — the `A → B → A` pattern — fires the assertion.

use omg_core::consistency::{AttrValue, ConsistencyEngine, ConsistencySpec, ConsistencyWindow};
use omg_core::{FnAssertion, Severity};

use crate::EcgWindow;

/// The guideline persistence threshold, seconds.
pub const ECG_T_SECS: f64 = 30.0;

// BEGIN ASSERTION
/// The ECG consistency spec: identifier = predicted rhythm class, no
/// attributes (§4.1: "We used the detected class as our identifier and
/// set T to 30 seconds").
#[derive(Debug, Clone, Copy, Default)]
pub struct EcgSpec;

impl ConsistencySpec for EcgSpec {
    type Output = usize;
    type Id = usize;

    fn id(&self, pred: &usize) -> usize {
        *pred
    }

    fn attrs(&self, _pred: &usize) -> Vec<(String, AttrValue)> {
        vec![]
    }

    fn attr_keys(&self) -> Vec<String> {
        vec![]
    }
}

/// Segments an ECG prediction window into the consistency window the
/// assertion runs over — the expensive per-window derivation the
/// streaming engine prepares once and shares.
pub fn ecg_segments(window: &EcgWindow) -> ConsistencyWindow<usize> {
    let mut cw = ConsistencyWindow::new();
    for (&t, &p) in window.times.iter().zip(&window.preds) {
        cw.push(t, vec![p]);
    }
    cw
}

/// Counts the consistency violations on already-segmented predictions —
/// the core of the ECG assertion, shared by the reference and prepared
/// paths.
pub fn ecg_severity(segments: &ConsistencyWindow<usize>) -> Severity {
    let engine = ConsistencyEngine::new(EcgSpec).with_temporal_threshold(ECG_T_SECS);
    Severity::from_count(engine.check(segments).len())
}

/// Builds the ECG assertion.
pub fn ecg_assertion() -> FnAssertion<EcgWindow> {
    FnAssertion::new("ecg", move |window: &EcgWindow| {
        ecg_severity(&ecg_segments(window))
    })
}
// END ASSERTION

#[cfg(test)]
mod tests {
    use super::*;
    use omg_core::Assertion;

    fn window(preds: &[usize], stride: f64) -> EcgWindow {
        let times: Vec<f64> = (0..preds.len()).map(|i| i as f64 * stride).collect();
        EcgWindow::new(times, preds.to_vec(), preds.len() / 2)
    }

    #[test]
    fn stable_rhythm_does_not_fire() {
        let a = ecg_assertion();
        assert!(!a.check(&window(&[0, 0, 0, 0, 0], 10.0)).fired());
    }

    #[test]
    fn fast_oscillation_fires() {
        // A -> B -> A with 10 s per window: B persists 10 s < 30 s.
        let a = ecg_assertion();
        let sev = a.check(&window(&[0, 0, 1, 0, 0], 10.0));
        assert!(sev.fired());
    }

    #[test]
    fn slow_transition_is_legal() {
        // A for 40 s, then B for 40 s: each class transitions once.
        let a = ecg_assertion();
        assert!(!a.check(&window(&[0, 0, 0, 0, 1, 1, 1, 1], 10.0)).fired());
    }

    #[test]
    fn persistent_af_is_legal() {
        // AF appearing and staying for >= 30 s is a legitimate call.
        let a = ecg_assertion();
        assert!(!a.check(&window(&[0, 0, 1, 1, 1, 1, 1], 10.0)).fired());
    }

    #[test]
    fn b_run_of_exactly_30s_is_legal() {
        // B present for 3 windows of 10 s: transitions 30 s apart, not
        // *within* 30 s.
        let a = ecg_assertion();
        assert!(!a.check(&window(&[0, 1, 1, 1, 0], 10.0)).fired());
    }

    #[test]
    fn multiple_oscillations_accumulate() {
        let a = ecg_assertion();
        let sev = a.check(&window(&[0, 1, 0, 1, 0], 10.0));
        assert!(sev.value() >= 2.0, "severity {sev}");
    }
}
