use omg_eval::ScoredBox;
use omg_geom::{BBox3D, CameraModel};

/// One time-aligned sample of AV model outputs — the sample type of the
/// `agree` and AV `multibox` assertions. Contains only what the deployed
/// models produced (no ground truth): camera detections, LIDAR boxes, and
/// the calibration needed to project between them.
#[derive(Debug, Clone, PartialEq)]
pub struct AvFrame {
    /// Timestamp in seconds.
    pub time: f64,
    /// The camera model's detections.
    pub camera_dets: Vec<ScoredBox>,
    /// The LIDAR model's 3D boxes.
    pub lidar_boxes: Vec<BBox3D>,
    /// The camera calibration (for projecting LIDAR boxes).
    pub camera: CameraModel,
}

/// One frame of detector output, as seen by the video assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoFrame {
    /// Frame index in the stream.
    pub index: u64,
    /// Timestamp in seconds.
    pub time: f64,
    /// The detector's boxes for this frame.
    pub dets: Vec<ScoredBox>,
}

/// A short window of consecutive frames — the sample type of the video
/// assertions, mirroring the paper's assertion signature
/// `flickering(recent_frames, recent_outputs)`.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoWindow {
    /// Consecutive frames in time order.
    pub frames: Vec<VideoFrame>,
    /// Index (within `frames`) of the frame this window is *about*; the
    /// surrounding frames are temporal context.
    pub center: usize,
}

impl VideoWindow {
    /// Builds a window.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty, `center` is out of range, or the
    /// timestamps are not strictly increasing.
    pub fn new(frames: Vec<VideoFrame>, center: usize) -> Self {
        assert!(!frames.is_empty(), "window needs at least one frame");
        assert!(center < frames.len(), "center out of range");
        // PANIC: windows(2) yields exactly-two-element slices.
        for w in frames.windows(2) {
            assert!(
                w[1].time > w[0].time,
                "frame timestamps must be strictly increasing"
            );
        }
        Self { frames, center }
    }

    /// The frame the window is centered on.
    pub fn center_frame(&self) -> &VideoFrame {
        // PANIC: center < frames.len() was asserted in new().
        &self.frames[self.center]
    }

    /// Number of frames in the window.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the window is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// A window of consecutive per-window ECG predictions — the sample type of
/// the ECG assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct EcgWindow {
    /// Prediction timestamps, seconds, strictly increasing.
    pub times: Vec<f64>,
    /// Predicted rhythm class per timestamp.
    pub preds: Vec<usize>,
    /// Index of the prediction this window is about.
    pub center: usize,
}

impl EcgWindow {
    /// Builds an ECG window.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, are empty, have
    /// non-increasing times, or `center` is out of range.
    pub fn new(times: Vec<f64>, preds: Vec<usize>, center: usize) -> Self {
        assert_eq!(times.len(), preds.len(), "times/preds length mismatch");
        assert!(!times.is_empty(), "window needs at least one prediction");
        assert!(center < times.len(), "center out of range");
        // PANIC: windows(2) yields exactly-two-element slices.
        for w in times.windows(2) {
            assert!(w[1] > w[0], "timestamps must be strictly increasing");
        }
        Self {
            times,
            preds,
            center,
        }
    }

    /// Number of predictions in the window.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the window is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omg_geom::BBox2D;

    fn frame(i: u64, t: f64) -> VideoFrame {
        VideoFrame {
            index: i,
            time: t,
            dets: vec![ScoredBox {
                bbox: BBox2D::new(0.0, 0.0, 10.0, 10.0).unwrap(),
                class: 0,
                score: 0.9,
            }],
        }
    }

    #[test]
    fn video_window_construction() {
        let w = VideoWindow::new(vec![frame(0, 0.0), frame(1, 0.1)], 1);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.center_frame().index, 1);
    }

    #[test]
    #[should_panic(expected = "center out of range")]
    fn bad_center_rejected() {
        VideoWindow::new(vec![frame(0, 0.0)], 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn bad_times_rejected() {
        VideoWindow::new(vec![frame(0, 0.5), frame(1, 0.5)], 0);
    }

    #[test]
    fn ecg_window_construction() {
        let w = EcgWindow::new(vec![0.0, 10.0, 20.0], vec![0, 1, 0], 1);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ecg_mismatch_rejected() {
        EcgWindow::new(vec![0.0], vec![0, 1], 0);
    }
}
