//! Shared helper functions used by the deployed assertions.
//!
//! The paper's Table 2 counts assertion LOC both excluding and including
//! shared helpers ("we double counted the helper functions when used
//! between assertions"); the `// BEGIN HELPER <name>` / `// END HELPER`
//! markers delimit what the Table 2 experiment counts for each helper.

use omg_core::consistency::{AttrValue, ConsistencySpec, ConsistencyWindow};
use omg_eval::ScoredBox;
use omg_geom::BBox2D;
use omg_track::{IouTracker, Observation};

use crate::VideoWindow;

// BEGIN HELPER tracked_box
/// A detection with the tracker-assigned identifier — the output type the
/// video consistency spec runs over ("we can assign a new identifier for
/// each box that appears and assign the same identifier as it persists
/// through the video", §4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct TrackedBox {
    /// Tracker-assigned identifier.
    pub track: u64,
    /// Predicted class.
    pub class: usize,
    /// Detected box.
    pub bbox: BBox2D,
}

/// The video consistency spec: identifier = track id, attribute = class.
#[derive(Debug, Clone, Copy, Default)]
pub struct VideoTrackSpec;

impl ConsistencySpec for VideoTrackSpec {
    type Output = TrackedBox;
    type Id = u64;

    fn id(&self, o: &TrackedBox) -> u64 {
        o.track
    }

    fn attrs(&self, o: &TrackedBox) -> Vec<(String, AttrValue)> {
        vec![("class".to_string(), AttrValue::class(o.class))]
    }

    fn attr_keys(&self) -> Vec<String> {
        vec!["class".to_string()]
    }
}
// END HELPER tracked_box

// BEGIN HELPER track_window
/// Runs the IoU tracker over a video window and returns the tracked
/// outputs as a consistency window (time → tracked boxes).
pub fn track_window(window: &VideoWindow) -> ConsistencyWindow<TrackedBox> {
    let mut tracker = IouTracker::new(0.25, 3);
    let mut out = ConsistencyWindow::new();
    for (fi, frame) in window.frames.iter().enumerate() {
        let observations: Vec<Observation> = frame
            .dets
            .iter()
            .map(|d| Observation {
                bbox: d.bbox,
                class: d.class,
                score: d.score,
            })
            .collect();
        let ids = tracker.update(fi, &observations);
        let tracked = frame
            .dets
            .iter()
            .zip(&ids)
            .map(|(d, id)| TrackedBox {
                track: id.0,
                class: d.class,
                bbox: d.bbox,
            })
            .collect();
        out.push(frame.time, tracked);
    }
    out
}
// END HELPER track_window

// BEGIN HELPER overlap_triples
/// Counts triples of same-class boxes that pairwise overlap above the
/// IoU threshold — the paper's `multibox` condition ("three boxes highly
/// overlap", Figure 7). Delegates to the spatial matcher in `omg-geom`
/// (grid-indexed in crowded frames, pairwise otherwise).
pub fn overlap_triples(dets: &[ScoredBox], iou_threshold: f64) -> usize {
    let boxes: Vec<BBox2D> = dets.iter().map(|d| d.bbox).collect();
    let classes: Vec<usize> = dets.iter().map(|d| d.class).collect();
    omg_geom::matchers::overlap_triples(&boxes, &classes, iou_threshold)
}
// END HELPER overlap_triples

// BEGIN HELPER no_overlap
/// Whether `bbox` overlaps none of `others` at or above the threshold —
/// the `no_overlap` predicate of the paper's `sensor_agreement` example
/// (§2.1).
pub fn no_overlap<'a, I>(bbox: &BBox2D, others: I, iou_threshold: f64) -> bool
where
    I: IntoIterator<Item = &'a BBox2D>,
{
    let targets: Vec<BBox2D> = others.into_iter().copied().collect();
    count_no_overlap(std::slice::from_ref(bbox), &targets, iou_threshold) == 1
}

/// Counts the `queries` that overlap none of `targets` at or above the
/// threshold — the batch form of `no_overlap` the agreement assertions
/// use, so a crowded frame is one indexed lookup instead of an O(n²)
/// scan.
pub fn count_no_overlap(queries: &[BBox2D], targets: &[BBox2D], iou_threshold: f64) -> usize {
    omg_geom::matchers::count_unmatched(queries, targets, iou_threshold)
}
// END HELPER no_overlap

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VideoFrame;

    fn sb(x: f64, class: usize, score: f64) -> ScoredBox {
        ScoredBox {
            bbox: BBox2D::new(x, 0.0, x + 10.0, 10.0).unwrap(),
            class,
            score,
        }
    }

    #[test]
    fn track_window_assigns_stable_ids() {
        let frames = vec![
            VideoFrame {
                index: 0,
                time: 0.0,
                dets: vec![sb(0.0, 0, 0.9), sb(100.0, 1, 0.8)],
            },
            VideoFrame {
                index: 1,
                time: 0.1,
                dets: vec![sb(1.0, 0, 0.9), sb(101.0, 1, 0.8)],
            },
        ];
        let w = VideoWindow::new(frames, 0);
        let cw = track_window(&w);
        assert_eq!(cw.len(), 2);
        let t0 = cw.outputs_at(0);
        let t1 = cw.outputs_at(1);
        assert_eq!(t0[0].track, t1[0].track);
        assert_eq!(t0[1].track, t1[1].track);
        assert_ne!(t0[0].track, t0[1].track);
    }

    #[test]
    fn overlap_triples_counts() {
        // Three boxes stacked on each other: one triple.
        let cluster = vec![sb(0.0, 0, 0.9), sb(1.0, 0, 0.8), sb(2.0, 0, 0.7)];
        assert_eq!(overlap_triples(&cluster, 0.3), 1);
        // A fourth overlapping box: C(4,3) = 4 triples.
        let mut four = cluster.clone();
        four.push(sb(1.5, 0, 0.6));
        assert_eq!(overlap_triples(&four, 0.3), 4);
        // Different classes never form a triple.
        let mixed = vec![sb(0.0, 0, 0.9), sb(1.0, 1, 0.8), sb(2.0, 0, 0.7)];
        assert_eq!(overlap_triples(&mixed, 0.3), 0);
        // Disjoint boxes never form a triple.
        let apart = vec![sb(0.0, 0, 0.9), sb(50.0, 0, 0.8), sb(100.0, 0, 0.7)];
        assert_eq!(overlap_triples(&apart, 0.3), 0);
        assert_eq!(overlap_triples(&[], 0.3), 0);
    }

    #[test]
    fn no_overlap_predicate() {
        let b = BBox2D::new(0.0, 0.0, 10.0, 10.0).unwrap();
        let near = BBox2D::new(2.0, 0.0, 12.0, 10.0).unwrap();
        let far = BBox2D::new(100.0, 0.0, 110.0, 10.0).unwrap();
        assert!(no_overlap(&b, [&far], 0.1));
        assert!(!no_overlap(&b, [&near], 0.1));
        assert!(no_overlap(&b, std::iter::empty::<&BBox2D>(), 0.1));
    }

    #[test]
    fn video_spec_maps_ids_and_attrs() {
        let spec = VideoTrackSpec;
        let tb = TrackedBox {
            track: 7,
            class: 2,
            bbox: BBox2D::new(0.0, 0.0, 1.0, 1.0).unwrap(),
        };
        assert_eq!(spec.id(&tb), 7);
        assert_eq!(spec.attrs(&tb)[0].1, AttrValue::class(2));
        assert_eq!(spec.attr_keys(), vec!["class"]);
    }
}
