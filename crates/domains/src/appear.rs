//! The `appear` assertion (video analytics, Table 1).
//!
//! The dual of `flicker`: an object that *appears and disappears* within
//! `T` seconds is most likely a spurious detection (a false positive
//! blinking into existence). Implemented with the consistency API:
//! identifier = tracker-assigned track id, temporal threshold `T`; this
//! assertion counts the *blip-type* temporal violations.

use omg_core::consistency::{ConsistencyEngine, ConsistencyWindow, Violation};
use omg_core::{FnAssertion, Severity};

use crate::helpers::{track_window, TrackedBox, VideoTrackSpec};
use crate::VideoWindow;

// BEGIN ASSERTION
/// Counts the blip-type temporal violations on an already-tracked window —
/// the core of `appear`, shared by the self-contained reference path and
/// the prepared streaming path (one tracking per window for the whole
/// assertion set).
pub fn appear_severity(tracked: &ConsistencyWindow<TrackedBox>, t: f64) -> Severity {
    let engine = ConsistencyEngine::new(VideoTrackSpec).with_temporal_threshold(t);
    let blips = engine
        .check(tracked)
        .into_iter()
        .filter(|v| matches!(v, Violation::TemporalTransition { gap: false, .. }))
        .count();
    Severity::from_count(blips)
}

/// Builds the `appear` assertion with temporal threshold `t` seconds.
pub fn appear_assertion(t: f64) -> FnAssertion<VideoWindow> {
    FnAssertion::new("appear", move |window: &VideoWindow| {
        appear_severity(&track_window(window), t)
    })
}
// END ASSERTION

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VideoFrame;
    use omg_core::Assertion;
    use omg_eval::ScoredBox;
    use omg_geom::BBox2D;

    fn frame(i: u64, present: bool) -> VideoFrame {
        let dets = if present {
            vec![ScoredBox {
                bbox: BBox2D::new(0.0, 0.0, 50.0, 50.0).unwrap(),
                class: 0,
                score: 0.9,
            }]
        } else {
            vec![]
        };
        VideoFrame {
            index: i,
            time: i as f64 * 0.1,
            dets,
        }
    }

    fn window(pattern: &[bool]) -> VideoWindow {
        let frames = pattern
            .iter()
            .enumerate()
            .map(|(i, &p)| frame(i as u64, p))
            .collect();
        VideoWindow::new(frames, pattern.len() / 2)
    }

    #[test]
    fn blip_fires() {
        let a = appear_assertion(0.45);
        let sev = a.check(&window(&[false, false, true, false, false]));
        assert!(sev.fired());
        assert_eq!(sev.value(), 1.0);
    }

    #[test]
    fn stable_object_does_not_fire() {
        let a = appear_assertion(0.45);
        assert!(!a.check(&window(&[true, true, true, true, true])).fired());
    }

    #[test]
    fn flicker_gap_does_not_fire_appear() {
        let a = appear_assertion(0.45);
        assert!(!a.check(&window(&[true, true, false, true, true])).fired());
    }

    #[test]
    fn long_lived_object_entering_is_fine() {
        // An object that appears and stays: one transition only.
        let a = appear_assertion(0.45);
        assert!(!a.check(&window(&[false, false, true, true, true])).fired());
    }

    #[test]
    fn long_visit_does_not_fire() {
        // Present for longer than T between two absences: legitimate.
        let a = appear_assertion(0.25);
        assert!(!a.check(&window(&[false, true, true, true, false])).fired());
    }
}
