//! Human-label validation (Appendix E).
//!
//! "We deployed a model assertion in which we tracked objects across
//! frames of a video using an automated method and verified that the same
//! object in different frames had the same label." The assertion can only
//! see *inconsistency*: a label error that persists across a whole track
//! is invisible, which is why the paper catches 12.5% of the errors
//! (Table 6) — and why the caught/total split is a meaningful statistic,
//! not a weakness of the implementation.

use omg_sim::labeler::LabeledBox;
use omg_track::{IouTracker, Observation, TrackId};

/// The outcome of validating a labeled clip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelCheckReport {
    /// `(frame_index, box_index)` of every label flagged as inconsistent
    /// with the rest of its track.
    pub flagged: Vec<(usize, usize)>,
    /// Number of tracks the automated tracker built.
    pub tracks: usize,
}

// BEGIN ASSERTION
/// Tracks labeled boxes across frames and flags labels that disagree with
/// their track's majority class.
pub fn check_labels(frames: &[Vec<LabeledBox>]) -> LabelCheckReport {
    let mut tracker = IouTracker::new(0.3, 2);
    // (frame, box) -> track assignment, in input order.
    let mut assignments: Vec<Vec<TrackId>> = Vec::with_capacity(frames.len());
    for (fi, labels) in frames.iter().enumerate() {
        let observations: Vec<Observation> = labels
            .iter()
            .map(|l| Observation {
                bbox: l.bbox,
                class: l.class,
                score: 1.0, // human labels carry full confidence
            })
            .collect();
        assignments.push(tracker.update(fi, &observations));
    }
    let mut flagged = Vec::new();
    for (fi, labels) in frames.iter().enumerate() {
        for (bi, label) in labels.iter().enumerate() {
            let track = tracker
                .track(assignments[fi][bi])
                .expect("assigned track exists");
            if track.distinct_classes() > 1 && label.class != track.majority_class() {
                flagged.push((fi, bi));
            }
        }
    }
    LabelCheckReport {
        flagged,
        tracks: tracker.num_tracks(),
    }
}
// END ASSERTION

impl LabelCheckReport {
    /// How many of the flagged labels are genuine errors (precision
    /// numerator for this assertion).
    pub fn caught_errors(&self, frames: &[Vec<LabeledBox>]) -> usize {
        self.flagged
            .iter()
            .filter(|&&(fi, bi)| frames[fi][bi].is_error())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omg_geom::BBox2D;

    fn lb(x: f64, class: usize, true_class: usize, track: u64) -> LabeledBox {
        LabeledBox {
            bbox: BBox2D::new(x, 0.0, x + 40.0, 40.0).unwrap(),
            class,
            true_class,
            track_id: track,
        }
    }

    #[test]
    fn consistent_labels_are_not_flagged() {
        let frames = vec![
            vec![lb(0.0, 0, 0, 1)],
            vec![lb(2.0, 0, 0, 1)],
            vec![lb(4.0, 0, 0, 1)],
        ];
        let report = check_labels(&frames);
        assert!(report.flagged.is_empty());
        assert_eq!(report.tracks, 1);
    }

    #[test]
    fn transient_slip_is_flagged_and_caught() {
        let frames = vec![
            vec![lb(0.0, 0, 0, 1)],
            vec![lb(2.0, 1, 0, 1)], // slip: labeled truck, actually car
            vec![lb(4.0, 0, 0, 1)],
        ];
        let report = check_labels(&frames);
        assert_eq!(report.flagged, vec![(1, 0)]);
        assert_eq!(report.caught_errors(&frames), 1);
    }

    #[test]
    fn consistent_mislabels_are_invisible() {
        // The labeler calls this car a truck in every frame: no
        // inconsistency, nothing to flag — the paper's central caveat.
        let frames = vec![
            vec![lb(0.0, 1, 0, 1)],
            vec![lb(2.0, 1, 0, 1)],
            vec![lb(4.0, 1, 0, 1)],
        ];
        let report = check_labels(&frames);
        assert!(report.flagged.is_empty());
        assert_eq!(report.caught_errors(&frames), 0);
    }

    #[test]
    fn separate_objects_do_not_cross_contaminate() {
        let frames = vec![
            vec![lb(0.0, 0, 0, 1), lb(500.0, 1, 1, 2)],
            vec![lb(2.0, 0, 0, 1), lb(502.0, 1, 1, 2)],
        ];
        let report = check_labels(&frames);
        assert!(report.flagged.is_empty());
        assert_eq!(report.tracks, 2);
    }

    #[test]
    fn majority_correct_slip_in_long_track() {
        let mut frames: Vec<Vec<LabeledBox>> =
            (0..10).map(|i| vec![lb(i as f64 * 2.0, 2, 2, 1)]).collect();
        frames[5][0].class = 0; // one slip
        let report = check_labels(&frames);
        assert_eq!(report.flagged, vec![(5, 0)]);
    }
}
