//! The TV-news consistency assertion (Table 1).
//!
//! "Given that most TV news hosts do not move much between scenes, we can
//! assert that the identity, gender, and hair color of faces that highly
//! overlap within the same scene are consistent" (§2.2). The identifier
//! is the face's position slot within a scene; identity, gender, and hair
//! color are its attributes (§4.1, Appendix A uses the scene id as the
//! identifier and the identity as an attribute).

use omg_core::consistency::{AttrValue, ConsistencyEngine, ConsistencySpec, ConsistencyWindow};
use omg_core::{FnAssertion, Severity};
use omg_sim::news::{NewsFace, NewsScene};

// BEGIN ASSERTION
/// The news consistency spec: identifier = (scene, slot); attributes =
/// identity, gender, hair color.
#[derive(Debug, Clone, Copy, Default)]
pub struct NewsSpec;

impl ConsistencySpec for NewsSpec {
    type Output = NewsFace;
    type Id = (u64, usize);

    fn id(&self, f: &NewsFace) -> (u64, usize) {
        (f.scene, f.slot)
    }

    fn attrs(&self, f: &NewsFace) -> Vec<(String, AttrValue)> {
        vec![
            ("identity".to_string(), AttrValue::Int(f.identity as i64)),
            ("gender".to_string(), AttrValue::Int(f.gender as i64)),
            ("hair".to_string(), AttrValue::Int(f.hair as i64)),
        ]
    }

    fn attr_keys(&self) -> Vec<String> {
        vec![
            "identity".to_string(),
            "gender".to_string(),
            "hair".to_string(),
        ]
    }
}

/// Counts attribute inconsistencies on an already-grouped scene window —
/// the core of `news`, shared by the reference path (which groups the
/// scene itself) and the prepared streaming path.
pub fn news_severity(window: &ConsistencyWindow<NewsFace>) -> Severity {
    let engine = ConsistencyEngine::new(NewsSpec);
    Severity::from_count(engine.check(window).len())
}

/// Builds the combined `news` assertion: the number of attribute
/// inconsistencies across all (scene, slot) groups in the scene.
pub fn news_assertion() -> FnAssertion<NewsScene> {
    FnAssertion::new("news", move |scene: &NewsScene| {
        news_severity(&scene_window(scene))
    })
}
// END ASSERTION

// BEGIN HELPER scene_window
/// Groups a scene's faces into a consistency window (one entry per sample
/// time).
pub fn scene_window(scene: &NewsScene) -> ConsistencyWindow<NewsFace> {
    let mut window = ConsistencyWindow::new();
    let mut current: Vec<NewsFace> = Vec::new();
    for face in &scene.faces {
        if let Some(first) = current.first() {
            if face.time > first.time {
                let t = first.time;
                window.push(t, std::mem::take(&mut current));
            }
        }
        current.push(face.clone());
    }
    if let Some(first) = current.first() {
        window.push(first.time, current.clone());
    }
    window
}
// END HELPER scene_window

/// The three per-attribute assertions OMG generates from [`NewsSpec`]
/// (`news-identity`, `news-gender`, `news-hair`) — the granular view of
/// the same checks.
pub fn news_generated_assertions() -> Vec<Box<dyn omg_core::Assertion<NewsScene>>> {
    use std::sync::Arc;
    let engine = Arc::new(ConsistencyEngine::new(NewsSpec));
    engine.generate_assertions("news", scene_window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use omg_core::Assertion;
    use omg_sim::news::{NewsConfig, NewsWorld};

    fn face(scene: u64, slot: usize, time: f64, identity: u32, gender: u8, hair: u8) -> NewsFace {
        NewsFace {
            scene,
            slot,
            time,
            identity,
            gender,
            hair,
            true_identity: identity,
        }
    }

    #[test]
    fn consistent_scene_does_not_fire() {
        let scene = NewsScene {
            scene: 0,
            start_time: 0.0,
            faces: vec![
                face(0, 0, 0.0, 3, 1, 2),
                face(0, 0, 3.0, 3, 1, 2),
                face(0, 0, 6.0, 3, 1, 2),
            ],
        };
        assert!(!news_assertion().check(&scene).fired());
    }

    #[test]
    fn identity_swap_fires() {
        let scene = NewsScene {
            scene: 0,
            start_time: 0.0,
            faces: vec![
                face(0, 0, 0.0, 3, 1, 2),
                face(0, 0, 3.0, 5, 1, 2), // transient identity swap
                face(0, 0, 6.0, 3, 1, 2),
            ],
        };
        let sev = news_assertion().check(&scene);
        assert!(sev.fired());
        assert_eq!(sev.value(), 1.0);
    }

    #[test]
    fn each_attribute_counts_separately() {
        let scene = NewsScene {
            scene: 0,
            start_time: 0.0,
            faces: vec![
                face(0, 0, 0.0, 3, 1, 2),
                face(0, 0, 3.0, 5, 0, 1), // identity, gender, and hair all flip
                face(0, 0, 6.0, 3, 1, 2),
            ],
        };
        assert_eq!(news_assertion().check(&scene).value(), 3.0);
    }

    #[test]
    fn two_hosts_are_independent_groups() {
        let scene = NewsScene {
            scene: 0,
            start_time: 0.0,
            faces: vec![
                face(0, 0, 0.0, 3, 1, 2),
                face(0, 1, 0.0, 7, 0, 0),
                face(0, 0, 3.0, 3, 1, 2),
                face(0, 1, 3.0, 7, 0, 0),
            ],
        };
        assert!(!news_assertion().check(&scene).fired());
    }

    #[test]
    fn generated_assertions_split_by_attribute() {
        let assertions = news_generated_assertions();
        let names: Vec<&str> = assertions.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["news-identity", "news-gender", "news-hair"]);
        let scene = NewsScene {
            scene: 0,
            start_time: 0.0,
            faces: vec![
                face(0, 0, 0.0, 3, 1, 2),
                face(0, 0, 3.0, 3, 0, 2), // only gender flips
                face(0, 0, 6.0, 3, 1, 2),
            ],
        };
        assert!(!assertions[0].check(&scene).fired());
        assert!(assertions[1].check(&scene).fired());
        assert!(!assertions[2].check(&scene).fired());
    }

    #[test]
    fn fires_on_simulated_world_errors() {
        let world = NewsWorld::new(NewsConfig::default(), 5);
        let assertion = news_assertion();
        let mut fired = 0usize;
        for scene in world.scenes(0..200) {
            if assertion.check(&scene).fired() {
                fired += 1;
            }
        }
        assert!(fired > 10, "assertion should fire on world errors: {fired}");
    }
}
