//! The TV-news world: scene cuts, hosts, and face-pipeline outputs.
//!
//! The paper's TV-news lab runs face detection every three seconds over a
//! decade of footage, then identifies the face, classifies gender, and
//! classifies hair color (§2.2). Because "most TV news hosts do not move
//! much between scenes", identity/gender/hair-color outputs that highly
//! overlap within one scene should be consistent — the flagship use of the
//! consistency API (§4).
//!
//! This module generates scenes with hosts from a roster and emits
//! [`NewsFace`] pipeline outputs with *transient* classifier errors
//! (identity swaps, gender flips, hair-color flips) at configurable rates.
//! Transient errors disagree with the rest of their scene, which is
//! exactly what the generated consistency assertions catch.

use rand::rngs::StdRng;
use rand::Rng;

use crate::derive_rng;

/// A roster member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Host {
    /// Unique identity index in the roster.
    pub identity: u32,
    /// Gender label (0/1) the gender classifier should output.
    pub gender: u8,
    /// Hair-color label in `0..NUM_HAIR_COLORS`.
    pub hair: u8,
}

/// Number of distinct hair-color classes.
pub const NUM_HAIR_COLORS: u8 = 4;

/// One face-pipeline output: the model's identity/gender/hair predictions
/// for a face box in one sampled frame.
#[derive(Debug, Clone, PartialEq)]
pub struct NewsFace {
    /// Scene index the frame belongs to.
    pub scene: u64,
    /// On-screen slot within the scene (a host's fixed position).
    pub slot: usize,
    /// Sample time in seconds.
    pub time: f64,
    /// Predicted identity (roster index).
    pub identity: u32,
    /// Predicted gender.
    pub gender: u8,
    /// Predicted hair color.
    pub hair: u8,
    /// Ground truth: the roster identity actually on screen
    /// (simulator-side only).
    pub true_identity: u32,
}

impl NewsFace {
    /// Whether any of the three model outputs is wrong, judged against
    /// the roster.
    pub fn is_error(&self, roster: &[Host]) -> bool {
        let truth = &roster[self.true_identity as usize];
        self.identity != self.true_identity
            || self.gender != truth.gender
            || self.hair != truth.hair
    }
}

/// Configuration of a [`NewsWorld`].
#[derive(Debug, Clone, PartialEq)]
pub struct NewsConfig {
    /// Number of hosts in the roster.
    pub roster_size: usize,
    /// Seconds between face-pipeline samples (the lab samples every 3 s).
    pub sample_period: f64,
    /// Scene duration range in seconds.
    pub scene_secs: (f64, f64),
    /// Per-sample probability of a transient identity swap.
    pub identity_error_rate: f64,
    /// Per-sample probability of a transient gender flip.
    pub gender_error_rate: f64,
    /// Per-sample probability of a transient hair-color flip.
    pub hair_error_rate: f64,
}

impl Default for NewsConfig {
    fn default() -> Self {
        Self {
            roster_size: 12,
            sample_period: 3.0,
            scene_secs: (6.0, 30.0),
            identity_error_rate: 0.02,
            gender_error_rate: 0.015,
            hair_error_rate: 0.025,
        }
    }
}

/// One scene's worth of pipeline outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct NewsScene {
    /// Scene index.
    pub scene: u64,
    /// Start time of the scene in seconds (global clock).
    pub start_time: f64,
    /// All face outputs in the scene, in time order.
    pub faces: Vec<NewsFace>,
}

/// Generates news footage deterministically by scene index.
#[derive(Debug, Clone)]
pub struct NewsWorld {
    config: NewsConfig,
    roster: Vec<Host>,
    seed: u64,
}

impl NewsWorld {
    /// Creates a world with a randomly drawn roster.
    ///
    /// # Panics
    ///
    /// Panics if the roster would be empty or the sample period is
    /// non-positive.
    pub fn new(config: NewsConfig, seed: u64) -> Self {
        assert!(config.roster_size >= 2, "need at least two hosts");
        assert!(config.sample_period > 0.0, "sample period must be positive");
        let mut rng = derive_rng(seed, 0x4E05);
        let roster = (0..config.roster_size)
            .map(|i| Host {
                identity: i as u32,
                gender: rng.gen_range(0..2),
                hair: rng.gen_range(0..NUM_HAIR_COLORS),
            })
            .collect();
        Self {
            config,
            roster,
            seed,
        }
    }

    /// The roster of hosts.
    pub fn roster(&self) -> &[Host] {
        &self.roster
    }

    /// The world's configuration.
    pub fn config(&self) -> &NewsConfig {
        &self.config
    }

    /// Generates one scene.
    pub fn scene(&self, scene_idx: u64) -> NewsScene {
        let mut rng: StdRng = derive_rng(self.seed, scene_idx.wrapping_mul(3) + 11);
        let duration = rng.gen_range(self.config.scene_secs.0..self.config.scene_secs.1);
        let n_samples = (duration / self.config.sample_period).floor().max(1.0) as usize;
        let n_hosts = rng.gen_range(1..=2.min(self.roster.len()));
        let mut host_indices = Vec::new();
        while host_indices.len() < n_hosts {
            let h = rng.gen_range(0..self.roster.len());
            if !host_indices.contains(&h) {
                host_indices.push(h);
            }
        }
        let start_time = scene_idx as f64 * (self.config.scene_secs.1 + 1.0);
        let mut faces = Vec::new();
        for s in 0..n_samples {
            let time = start_time + s as f64 * self.config.sample_period;
            for (slot, &h) in host_indices.iter().enumerate() {
                // PANIC: host indices are sampled from 0..roster.len().
                let truth = &self.roster[h];
                // Transient errors, independent per sample.
                let identity = if rng.gen::<f64>() < self.config.identity_error_rate {
                    // Swap to a different roster member.
                    let mut other = rng.gen_range(0..self.roster.len() as u32);
                    if other == truth.identity {
                        other = (other + 1) % self.roster.len() as u32;
                    }
                    other
                } else {
                    truth.identity
                };
                // Gender/hair classifiers run on the face crop: they
                // mostly echo the *true* host's appearance, with their own
                // transient errors.
                let gender = if rng.gen::<f64>() < self.config.gender_error_rate {
                    1 - truth.gender
                } else {
                    truth.gender
                };
                let hair = if rng.gen::<f64>() < self.config.hair_error_rate {
                    (truth.hair + rng.gen_range(1..NUM_HAIR_COLORS)) % NUM_HAIR_COLORS
                } else {
                    truth.hair
                };
                faces.push(NewsFace {
                    scene: scene_idx,
                    slot,
                    time,
                    identity,
                    gender,
                    hair,
                    true_identity: truth.identity,
                });
            }
        }
        NewsScene {
            scene: scene_idx,
            start_time,
            faces,
        }
    }

    /// Generates a contiguous range of scenes.
    pub fn scenes(&self, range: std::ops::Range<u64>) -> Vec<NewsScene> {
        range.map(|i| self.scene(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> NewsWorld {
        NewsWorld::new(NewsConfig::default(), 21)
    }

    #[test]
    fn roster_is_valid() {
        let w = world();
        assert_eq!(w.roster().len(), 12);
        for (i, h) in w.roster().iter().enumerate() {
            assert_eq!(h.identity, i as u32);
            assert!(h.gender < 2);
            assert!(h.hair < NUM_HAIR_COLORS);
        }
    }

    #[test]
    fn scenes_are_deterministic() {
        let w = world();
        assert_eq!(w.scene(3), w.scene(3));
        assert_ne!(w.scene(3), w.scene(4));
    }

    #[test]
    fn faces_cover_every_sample_and_slot() {
        let w = world();
        let scene = w.scene(0);
        assert!(!scene.faces.is_empty());
        let slots: std::collections::HashSet<usize> = scene.faces.iter().map(|f| f.slot).collect();
        // Each slot appears the same number of times.
        for &slot in &slots {
            let count = scene.faces.iter().filter(|f| f.slot == slot).count();
            assert_eq!(count, scene.faces.len() / slots.len());
        }
    }

    #[test]
    fn error_rates_are_near_configured() {
        let w = world();
        let mut errors = 0usize;
        let mut total = 0usize;
        for s in w.scenes(0..300) {
            for f in &s.faces {
                total += 1;
                errors += usize::from(f.is_error(w.roster()));
            }
        }
        let rate = errors as f64 / total as f64;
        // Union of ~2% + 1.5% + 2.5% transient errors ≈ 6%.
        assert!(
            (0.02..0.12).contains(&rate),
            "error rate {rate} outside expected band"
        );
    }

    #[test]
    fn most_faces_in_a_scene_agree() {
        // The majority value per (scene, slot) equals the truth almost
        // always — required for the majority-vote correction to be valid.
        let w = world();
        for s in w.scenes(0..100) {
            let slots: std::collections::HashSet<usize> = s.faces.iter().map(|f| f.slot).collect();
            for slot in slots {
                let ids: Vec<u32> = s
                    .faces
                    .iter()
                    .filter(|f| f.slot == slot)
                    .map(|f| f.identity)
                    .collect();
                if ids.len() < 3 {
                    continue;
                }
                let truth = s
                    .faces
                    .iter()
                    .find(|f| f.slot == slot)
                    .unwrap()
                    .true_identity;
                let majority_count = ids.iter().filter(|&&i| i == truth).count();
                assert!(
                    majority_count * 2 > ids.len(),
                    "truth should be the majority in scene {} slot {slot}",
                    s.scene
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "two hosts")]
    fn tiny_roster_rejected() {
        NewsWorld::new(
            NewsConfig {
                roster_size: 1,
                ..NewsConfig::default()
            },
            1,
        );
    }
}
