//! A trainable simulated object detector.
//!
//! [`SimDetector`] stands in for the paper's ResNet-34 SSD. It is *not* a
//! lookup table: detection, classification, and duplicate suppression are
//! three logistic heads over object appearance features, trained with SGD
//! (`omg-learn`). Pretrained on a clean "still-image" domain
//! ([`DomainConditions::day`]) and deployed on night video, it reproduces
//! the systematic error classes the paper documents:
//!
//! * **flicker** — hard objects get mid-range detection probabilities, so
//!   per-frame Bernoulli draws make them blink in and out (Figure 1);
//! * **multibox** — the duplicate head fires on large/dark objects,
//!   emitting overlapping boxes (Figure 7);
//! * **systematic misclassification** — the night-time channel bias lands
//!   deep inside the wrong class region, producing errors *with high
//!   confidence* (§5.3);
//! * **false positives** — night clutter picks up the same channel bias
//!   and fools the detection head.
//!
//! Training on labeled or weakly labeled night data genuinely moves the
//! heads' weights and shrinks all of these error modes, which is the
//! mechanism behind the active-learning (Figure 4) and weak-supervision
//! (Table 4) experiments.

use omg_eval::ScoredBox;
use omg_geom::BBox2D;
use rand::rngs::StdRng;
use rand::Rng;

use crate::signal::{normal, CLUTTER_CLASS};
use crate::{derive_rng, AppearanceModel, DomainConditions, ObjectSignal, APP_DIM, NUM_CLASSES};
use omg_learn::{Dataset, SoftmaxRegression};

/// Configuration of a [`SimDetector`].
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Localization jitter in pixels (scaled up for low-quality objects).
    pub loc_jitter: f64,
    /// Learning rate used for all three heads.
    pub lr: f64,
    /// Seed of the per-frame detection noise streams.
    pub seed: u64,
    /// Softening applied to the detection head's logit: the effective
    /// detection probability is `sigmoid(logit / detect_temperature)`.
    ///
    /// This models per-frame sensor/threshold noise around the objectness
    /// boundary: a value above 1 keeps marginal objects in the mid-range
    /// where independent per-frame draws *flicker*, and makes training
    /// progress gradual (margins must grow before detection saturates).
    pub detect_temperature: f64,
    /// Temperature on the classification head's reported probabilities
    /// (argmax-invariant, so accuracy is unaffected).
    ///
    /// An unregularized softmax trained to convergence is wildly
    /// overconfident — nearly every prediction saturates at `p > 0.99`,
    /// collapsing the confidence distribution into a spike. Reported
    /// confidences in real detectors are softer than the raw head; this
    /// temperature restores that spread so confidence *ranks* detections
    /// (which both mAP and the §5.3 confidence-percentile analysis need).
    pub cls_temperature: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            loc_jitter: 2.5,
            lr: 0.025,
            seed: 0xDE7EC7,
            detect_temperature: 2.0,
            cls_temperature: 2.5,
        }
    }
}

/// Learning rate used during synthetic pretraining (fine-tuning uses the
/// much smaller `DetectorConfig::lr`, so active-learning gains accrue
/// over rounds rather than saturating immediately).
const PRETRAIN_LR: f64 = 0.3;

/// Width (in logit units) of the boundary band inside which
/// [`DetectorConfig::detect_temperature`] softens the detection head's
/// *rejections*; see [`SimDetector::detect_probability`].
const TEMPERATURE_BAND: f64 = 1.0;

/// Where a detection came from — ground truth the *simulator* keeps for
/// evaluation; assertions only ever see the [`ScoredBox`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// A detection of a real object.
    Object {
        /// The underlying object's track id.
        track_id: u64,
        /// The object's true class.
        true_class: usize,
    },
    /// A spurious duplicate of a real object's detection (a multibox
    /// error).
    Duplicate {
        /// The duplicated object's track id.
        track_id: u64,
        /// The object's true class.
        true_class: usize,
    },
    /// A false positive on background clutter.
    Clutter {
        /// The clutter patch's id.
        track_id: u64,
    },
}

/// One detector output with its (simulator-side) provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// What downstream consumers (assertions, trackers, evaluation) see.
    pub scored: ScoredBox,
    /// Ground-truth provenance, for precision analysis only.
    pub provenance: Provenance,
}

impl Detection {
    /// Whether this detection is erroneous: a false positive, a duplicate,
    /// or a real object with the wrong class label.
    pub fn is_error(&self) -> bool {
        match self.provenance {
            Provenance::Object { true_class, .. } => self.scored.class != true_class,
            Provenance::Duplicate { .. } | Provenance::Clutter { .. } => true,
        }
    }

    /// The underlying track id (object, duplicate source, or clutter
    /// patch).
    pub fn track_id(&self) -> u64 {
        match self.provenance {
            Provenance::Object { track_id, .. }
            | Provenance::Duplicate { track_id, .. }
            | Provenance::Clutter { track_id } => track_id,
        }
    }
}

/// Accumulates supervised and weakly supervised examples for
/// [`SimDetector::train`].
#[derive(Debug, Clone)]
pub struct TrainingBatch {
    det: Dataset,
    cls: Dataset,
    dup: Dataset,
}

impl TrainingBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self {
            det: Dataset::new(APP_DIM),
            cls: Dataset::new(APP_DIM),
            dup: Dataset::new(APP_DIM),
        }
    }

    /// Adds a human-labeled real object: teaches the detection head to
    /// fire, the class head its true class, and the duplicate head to stay
    /// quiet.
    ///
    /// # Panics
    ///
    /// Panics if the signal is clutter.
    pub fn add_labeled_object(&mut self, signal: &ObjectSignal) {
        assert!(
            !signal.is_clutter(),
            "use add_labeled_background for clutter"
        );
        self.det.push(signal.appearance.clone(), 1);
        self.cls.push(signal.appearance.clone(), signal.true_class);
        self.dup.push(signal.appearance.clone(), 0);
    }

    /// Adds a human-labeled background patch (teaches the detection head
    /// to abstain).
    pub fn add_labeled_background(&mut self, signal: &ObjectSignal) {
        self.det.push(signal.appearance.clone(), 0);
    }

    /// Adds a weak positive box (from a flicker-gap `Add` correction or a
    /// LIDAR-imputed box): the appearance is the image patch at the
    /// proposed box; `weight < 1` reflects weak-label noise.
    pub fn add_weak_box(&mut self, appearance: Vec<f64>, class: usize, weight: f64) {
        self.det.push_weighted(appearance.clone(), 1, weight);
        self.cls.push_weighted(appearance, class, weight);
    }

    /// Adds a weak duplicate-removal example (from a `Remove` correction
    /// on a multibox cluster): teaches the duplicate head to stay quiet on
    /// this appearance.
    pub fn add_weak_remove(&mut self, appearance: Vec<f64>, weight: f64) {
        self.dup.push_weighted(appearance, 0, weight);
    }

    /// Adds a weak background example (from a `Remove` correction on a
    /// spurious blip): teaches the detection head to abstain on this
    /// appearance.
    pub fn add_weak_background(&mut self, appearance: Vec<f64>, weight: f64) {
        self.det.push_weighted(appearance, 0, weight);
    }

    /// Adds a weak class correction (from a majority-vote `SetAttr`).
    pub fn add_weak_class(&mut self, appearance: Vec<f64>, class: usize, weight: f64) {
        self.cls.push_weighted(appearance, class, weight);
    }

    /// Number of detection-head examples.
    pub fn len_det(&self) -> usize {
        self.det.len()
    }

    /// Number of class-head examples.
    pub fn len_cls(&self) -> usize {
        self.cls.len()
    }

    /// Number of duplicate-head examples.
    pub fn len_dup(&self) -> usize {
        self.dup.len()
    }

    /// Whether the batch holds no examples at all.
    pub fn is_empty(&self) -> bool {
        self.det.is_empty() && self.cls.is_empty() && self.dup.is_empty()
    }

    /// Merges another batch into this one.
    pub fn merge(&mut self, other: &TrainingBatch) {
        self.det.extend_from(&other.det);
        self.cls.extend_from(&other.cls);
        self.dup.extend_from(&other.dup);
    }
}

impl Default for TrainingBatch {
    fn default() -> Self {
        Self::new()
    }
}

/// The trainable simulated detector (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct SimDetector {
    det_head: SoftmaxRegression,
    cls_head: SoftmaxRegression,
    dup_head: SoftmaxRegression,
    config: DetectorConfig,
}

impl SimDetector {
    /// Creates an *untrained* detector (uniform heads). Most callers want
    /// [`SimDetector::pretrained`].
    pub fn untrained(config: DetectorConfig) -> Self {
        let lr = config.lr;
        Self {
            det_head: SoftmaxRegression::new(APP_DIM, 2, lr),
            cls_head: SoftmaxRegression::new(APP_DIM, NUM_CLASSES, lr),
            dup_head: SoftmaxRegression::new(APP_DIM, 2, lr),
            config,
        }
    }

    /// Pretrains a detector on a synthetic clean daytime corpus — the
    /// stand-in for "SSD pretrained on MS-COCO still images" (§5.1).
    ///
    /// The pretrained detector is near-perfect on daytime data and
    /// systematically wrong on night data.
    pub fn pretrained(config: DetectorConfig, seed: u64) -> Self {
        let mut detector = Self::untrained(config);
        let day = AppearanceModel::new(DomainConditions::day());
        let mut rng = derive_rng(seed, 0xC0C0);
        let mut batch = TrainingBatch::new();
        for i in 0..4000u64 {
            let class = (i % NUM_CLASSES as u64) as usize;
            // Still-image corpora include moderately hard examples
            // (shade, partial occlusion), so the pretrained boundary
            // sits fairly low — but *above* the activation range of
            // night-time dark vehicles, which therefore land in the
            // flickering mid-probability zone. The low-light band itself
            // stays untrained (no night data in the corpus).
            let quality = rng.gen_range(0.5..1.0);
            let size = rng.gen_range(0.05..0.6);
            let occl = rng.gen_range(0.0..0.3);
            let speed = rng.gen_range(0.0..1.0);
            let app = day.object_appearance(class, quality, size, occl, speed, &mut rng);
            batch.det.push(app.clone(), 1);
            batch.cls.push(app.clone(), class);
            // Daytime duplicate statistics: rare, slightly more common for
            // big boxes and at the dim end of the daytime brightness
            // range. The learned negative brightness weight is what makes
            // duplicates *flare up* at night — genuine extrapolation
            // failure under domain shift.
            let p_dup = 0.03 + 0.10 * size + 0.15 * (0.85 - app[3]).max(0.0);
            let dup = rng.gen_bool(p_dup.clamp(0.0, 1.0));
            batch.dup.push(app, usize::from(dup));
        }
        for _ in 0..3000 {
            let size = rng.gen_range(0.02..0.45);
            let app = day.clutter_appearance(size, &mut rng);
            batch.det.push(app, 0);
        }
        detector.set_lr(PRETRAIN_LR);
        detector.train(&batch, 30, &mut rng);
        detector.set_lr(detector.config.lr);
        detector
    }

    /// Replaces the learning rate of all three heads.
    pub fn set_lr(&mut self, lr: f64) {
        self.det_head.set_lr(lr);
        self.cls_head.set_lr(lr);
        self.dup_head.set_lr(lr);
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Detection probability for one signal: the detection head's
    /// positive-class probability with the configured temperature applied
    /// to its logit.
    ///
    /// The temperature models per-frame sensor/threshold noise. On the
    /// *accept* side the whole logit is softened — that is the flickering
    /// mid-probability zone marginal objects (night-time dark vehicles)
    /// live in. On the *reject* side only [`TEMPERATURE_BAND`] logits
    /// around the boundary are softened: threshold noise smears decisions
    /// the head is unsure about, but does not flip patches it rejects by
    /// a wide margin, so confidently rejected clutter blinks in only on
    /// rare noise spikes rather than every few frames.
    pub fn detect_probability(&self, signal: &ObjectSignal) -> f64 {
        let p = self.det_head.predict_proba(&signal.appearance)[1].clamp(1e-9, 1.0 - 1e-9);
        let logit = (p / (1.0 - p)).ln();
        let t = self.config.detect_temperature;
        let softened = if logit >= 0.0 {
            logit / t
        } else {
            let mag = -logit;
            -(mag.min(TEMPERATURE_BAND) / t + (mag - TEMPERATURE_BAND).max(0.0))
        };
        1.0 / (1.0 + (-softened).exp())
    }

    /// Class distribution the detector would assign to one signal, with
    /// [`DetectorConfig::cls_temperature`] applied (argmax-invariant).
    pub fn class_probabilities(&self, signal: &ObjectSignal) -> Vec<f64> {
        let probs = self.cls_head.predict_proba(&signal.appearance);
        let t = self.config.cls_temperature;
        if (t - 1.0).abs() < 1e-12 {
            return probs;
        }
        // Dividing log-probabilities by the temperature and renormalizing
        // is the same as re-softmaxing the head's logits at temperature t.
        let scaled: Vec<f64> = probs
            .iter()
            .map(|p| (p.clamp(1e-300, 1.0).ln() / t).exp())
            .collect();
        let z: f64 = scaled.iter().sum();
        scaled.iter().map(|s| s / z).collect()
    }

    /// Duplicate probability for one signal.
    pub fn duplicate_probability(&self, signal: &ObjectSignal) -> f64 {
        self.dup_head.predict_proba(&signal.appearance)[1]
    }

    /// Runs the detector on one frame's signals.
    ///
    /// Randomness is drawn from a stream keyed by `(config.seed,
    /// frame_index, track_id)`, so re-running the same frame with a
    /// retrained model replays the same noise: improvements come from the
    /// model, not RNG drift.
    pub fn detect_frame(&self, frame_index: u64, signals: &[ObjectSignal]) -> Vec<Detection> {
        let mut out = Vec::new();
        for signal in signals {
            let mut rng = derive_rng(
                self.config.seed,
                frame_index
                    .wrapping_mul(0x0100_0001)
                    .wrapping_add(signal.track_id),
            );
            // Fixed draw order regardless of branching, for stability.
            let u_det: f64 = rng.gen();
            let u_cls: f64 = rng.gen();
            let u_dup: f64 = rng.gen();
            let u_ndup: f64 = rng.gen();
            let jitter: Vec<f64> = (0..10).map(|_| normal(&mut rng)).collect();

            let p_det = self.detect_probability(signal);
            if u_det >= p_det {
                continue; // missed (a flicker frame if neighbors detect it)
            }
            let cls_probs = self.class_probabilities(signal);
            let class = sample_class(&cls_probs, u_cls);
            // Confidence is dominated by the classification head — the
            // head that domain shift *miscalibrates*. This is what makes
            // high-confidence errors (§5.3): a night-time clutter patch
            // or duplicate can carry a very confident class score even
            // though the detection is garbage.
            let confidence = (0.25 * p_det + 0.75 * cls_probs[class]).clamp(0.01, 0.999);
            let sigma = self.config.loc_jitter * (1.2 - signal.quality);
            let bbox = jittered_box(&signal.bbox, sigma, &jitter[0..4]);
            let provenance = if signal.true_class == CLUTTER_CLASS {
                Provenance::Clutter {
                    track_id: signal.track_id,
                }
            } else {
                Provenance::Object {
                    track_id: signal.track_id,
                    true_class: signal.true_class,
                }
            };
            out.push(Detection {
                scored: ScoredBox {
                    bbox,
                    class,
                    score: confidence,
                },
                provenance,
            });

            // Multibox duplicates (real objects only — clutter FPs are
            // already errors on their own).
            if signal.true_class != CLUTTER_CLASS {
                let p_dup = self.duplicate_probability(signal);
                if u_dup < p_dup {
                    let n_extra = if u_ndup < 0.4 { 2 } else { 1 };
                    for e in 0..n_extra {
                        let off = 0.18 * signal.bbox.width().max(8.0);
                        let dir = if e == 0 { 1.0 } else { -1.0 };
                        let dup_box = jittered_box(
                            &signal.bbox.translated(dir * off, dir * off * 0.4),
                            sigma,
                            &jitter[4 + 2 * e..8 + 2 * e],
                        );
                        out.push(Detection {
                            scored: ScoredBox {
                                bbox: dup_box,
                                class,
                                // Duplicates carry the primary box's
                                // confidence — which is why NMS keys on
                                // IoU, not score, and why multibox errors
                                // reach the top confidence percentiles
                                // (§5.3).
                                score: confidence,
                            },
                            provenance: Provenance::Duplicate {
                                track_id: signal.track_id,
                                true_class: signal.true_class,
                            },
                        });
                    }
                }
            }
        }
        out
    }

    /// Trains all three heads on a batch for the given number of epochs.
    pub fn train(&mut self, batch: &TrainingBatch, epochs: usize, rng: &mut StdRng) {
        for _ in 0..epochs {
            if !batch.det.is_empty() {
                self.det_head.train_epoch(&batch.det, 32, rng);
            }
            if !batch.cls.is_empty() {
                self.cls_head.train_epoch(&batch.cls, 32, rng);
            }
            if !batch.dup.is_empty() {
                self.dup_head.train_epoch(&batch.dup, 32, rng);
            }
        }
    }
}

/// Samples a class index from a probability vector using a single uniform
/// draw.
fn sample_class(probs: &[f64], u: f64) -> usize {
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    probs.len() - 1
}

/// Applies Gaussian jitter (first four entries of `noise`) to a box,
/// keeping it valid.
fn jittered_box(bbox: &BBox2D, sigma: f64, noise: &[f64]) -> BBox2D {
    let x1 = bbox.x1() + noise[0] * sigma;
    let y1 = bbox.y1() + noise[1] * sigma;
    let x2 = bbox.x2() + noise[2] * sigma;
    let y2 = bbox.y2() + noise[3] * sigma;
    BBox2D::new(x1.min(x2), y1.min(y2), x1.max(x2), y1.max(y2))
        .expect("jittered coordinates are finite")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::CLUTTER_CLASS;

    fn day_signal(class: usize, quality: f64, seed: u64) -> ObjectSignal {
        let model = AppearanceModel::new(DomainConditions::day());
        let mut rng = derive_rng(seed, 77);
        ObjectSignal {
            track_id: seed,
            true_class: class,
            bbox: BBox2D::new(100.0, 100.0, 200.0, 180.0).unwrap(),
            appearance: model.object_appearance(class, quality, 0.3, 0.0, 0.3, &mut rng),
            quality,
        }
    }

    fn night_signal(class: usize, quality: f64, seed: u64) -> ObjectSignal {
        let model = AppearanceModel::new(DomainConditions::night());
        let mut rng = derive_rng(seed, 78);
        ObjectSignal {
            track_id: seed,
            true_class: class,
            bbox: BBox2D::new(100.0, 100.0, 200.0, 180.0).unwrap(),
            appearance: model.object_appearance(class, quality, 0.3, 0.0, 0.3, &mut rng),
            quality,
        }
    }

    #[test]
    fn pretrained_detects_day_objects_reliably() {
        let det = SimDetector::pretrained(DetectorConfig::default(), 1);
        let mut p_sum = 0.0;
        for s in 0..50 {
            p_sum += det.detect_probability(&day_signal(s as usize % 3, 0.8, s)) / 50.0;
        }
        // The detection temperature (sensor/threshold noise) caps even
        // easy-domain probabilities below saturation.
        assert!(p_sum > 0.82, "day detection probability too low: {p_sum}");
    }

    #[test]
    fn pretrained_rejects_day_clutter() {
        let det = SimDetector::pretrained(DetectorConfig::default(), 1);
        let model = AppearanceModel::new(DomainConditions::day());
        let mut rng = derive_rng(5, 79);
        let mut p_sum = 0.0;
        for s in 0..50u64 {
            let signal = ObjectSignal {
                track_id: s,
                true_class: CLUTTER_CLASS,
                bbox: BBox2D::new(0.0, 0.0, 30.0, 30.0).unwrap(),
                appearance: model.clutter_appearance(0.05, &mut rng),
                quality: 0.5,
            };
            p_sum += det.detect_probability(&signal) / 50.0;
        }
        assert!(p_sum < 0.25, "day clutter FP probability too high: {p_sum}");
    }

    #[test]
    fn night_failures_concentrate_on_dark_vehicles() {
        // The domain shift is structured: well-lit vehicles survive the
        // night, dark ones drop into the flickering mid-probability zone
        // (they fall in the untrained low-light band).
        let det = SimDetector::pretrained(DetectorConfig::default(), 1);
        let avg = |mk: fn(usize, f64, u64) -> ObjectSignal, q: f64| -> f64 {
            (0..60)
                .map(|s| det.detect_probability(&mk(0, q, s)))
                .sum::<f64>()
                / 60.0
        };
        let day_easy = avg(day_signal, 0.85);
        let night_easy = avg(night_signal, 0.85);
        let night_dark = avg(night_signal, 0.35);
        assert!(day_easy > 0.85, "day easy p {day_easy}");
        assert!(night_easy > 0.75, "night easy p {night_easy}");
        assert!(
            night_dark < 0.75,
            "night dark vehicles must be flicker-prone: {night_dark}"
        );
        assert!(
            night_dark < night_easy - 0.2,
            "failures must concentrate on the dark subpopulation: easy {night_easy}, dark {night_dark}"
        );
    }

    #[test]
    fn night_classification_degrades() {
        let det = SimDetector::pretrained(DetectorConfig::default(), 1);
        let acc = |mk: fn(usize, f64, u64) -> ObjectSignal| {
            let mut hits = 0;
            for s in 0..120u64 {
                let class = (s % 3) as usize;
                let sig = mk(class, 0.7, s);
                let probs = det.class_probabilities(&sig);
                let pred = probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0;
                hits += usize::from(pred == class);
            }
            hits as f64 / 120.0
        };
        let day_acc = acc(day_signal);
        let night_acc = acc(night_signal);
        assert!(day_acc > 0.9, "day class accuracy {day_acc}");
        assert!(
            night_acc < day_acc - 0.05,
            "night class accuracy should drop: day {day_acc}, night {night_acc}"
        );
    }

    #[test]
    fn training_on_night_data_improves_night_detection() {
        let mut det = SimDetector::pretrained(DetectorConfig::default(), 1);
        let before: f64 = (0..40)
            .map(|s| det.detect_probability(&night_signal(0, 0.5, 1000 + s)))
            .sum::<f64>()
            / 40.0;
        let mut batch = TrainingBatch::new();
        for s in 0..200 {
            batch.add_labeled_object(&night_signal((s % 3) as usize, 0.5, 2000 + s));
        }
        let mut rng = derive_rng(3, 80);
        det.train(&batch, 10, &mut rng);
        let after: f64 = (0..40)
            .map(|s| det.detect_probability(&night_signal(0, 0.5, 1000 + s)))
            .sum::<f64>()
            / 40.0;
        assert!(
            after > before + 0.05,
            "training should improve night detection: {before} -> {after}"
        );
    }

    #[test]
    fn detect_frame_is_deterministic() {
        let det = SimDetector::pretrained(DetectorConfig::default(), 1);
        let signals: Vec<ObjectSignal> = (0..10).map(|s| night_signal(0, 0.5, s)).collect();
        let a = det.detect_frame(7, &signals);
        let b = det.detect_frame(7, &signals);
        assert_eq!(a, b);
    }

    #[test]
    fn different_frames_give_different_noise() {
        let det = SimDetector::pretrained(DetectorConfig::default(), 1);
        let signals: Vec<ObjectSignal> = (0..30).map(|s| night_signal(0, 0.5, s)).collect();
        let a = det.detect_frame(1, &signals);
        let b = det.detect_frame(2, &signals);
        // With mid-range probabilities the two frames should disagree on
        // at least one object — that is exactly flicker.
        assert_ne!(a, b);
    }

    #[test]
    fn duplicates_are_rare_in_day_and_marked() {
        let det = SimDetector::pretrained(DetectorConfig::default(), 1);
        let signals: Vec<ObjectSignal> = (0..100).map(|s| day_signal(0, 0.9, s)).collect();
        let mut dups = 0;
        let mut total = 0;
        for f in 0..10 {
            for d in det.detect_frame(f, &signals) {
                total += 1;
                if matches!(d.provenance, Provenance::Duplicate { .. }) {
                    dups += 1;
                    assert!(d.is_error());
                }
            }
        }
        assert!(total > 0);
        let rate = dups as f64 / total as f64;
        assert!(rate < 0.25, "daytime duplicate rate too high: {rate}");
    }

    #[test]
    fn night_duplicates_exceed_day_duplicates() {
        let det = SimDetector::pretrained(DetectorConfig::default(), 1);
        let day: f64 = (0..60)
            .map(|s| det.duplicate_probability(&day_signal(0, 0.7, s)))
            .sum::<f64>()
            / 60.0;
        let night: f64 = (0..60)
            .map(|s| det.duplicate_probability(&night_signal(0, 0.7, s)))
            .sum::<f64>()
            / 60.0;
        assert!(
            night > day,
            "night duplicates should exceed day: day {day}, night {night}"
        );
    }

    #[test]
    fn error_flags_follow_provenance() {
        let d = Detection {
            scored: ScoredBox {
                bbox: BBox2D::new(0.0, 0.0, 1.0, 1.0).unwrap(),
                class: 1,
                score: 0.9,
            },
            provenance: Provenance::Object {
                track_id: 3,
                true_class: 1,
            },
        };
        assert!(!d.is_error());
        assert_eq!(d.track_id(), 3);
        let wrong = Detection {
            provenance: Provenance::Object {
                track_id: 3,
                true_class: 0,
            },
            ..d.clone()
        };
        assert!(wrong.is_error());
        let clutter = Detection {
            provenance: Provenance::Clutter { track_id: 9 },
            ..d
        };
        assert!(clutter.is_error());
    }

    #[test]
    fn sample_class_respects_cdf() {
        assert_eq!(sample_class(&[0.2, 0.5, 0.3], 0.1), 0);
        assert_eq!(sample_class(&[0.2, 0.5, 0.3], 0.3), 1);
        assert_eq!(sample_class(&[0.2, 0.5, 0.3], 0.95), 2);
        assert_eq!(sample_class(&[0.2, 0.5, 0.3], 1.5), 2);
    }

    #[test]
    fn training_batch_accounting() {
        let mut b = TrainingBatch::new();
        assert!(b.is_empty());
        b.add_labeled_object(&day_signal(1, 0.8, 1));
        b.add_weak_box(vec![0.0; APP_DIM], 0, 0.5);
        b.add_weak_remove(vec![0.0; APP_DIM], 0.5);
        b.add_weak_class(vec![0.0; APP_DIM], 2, 0.5);
        assert_eq!(b.len_det(), 2);
        assert_eq!(b.len_cls(), 3);
        assert_eq!(b.len_dup(), 2);
        let mut b2 = TrainingBatch::new();
        b2.merge(&b);
        assert_eq!(b2.len_det(), 2);
    }

    #[test]
    #[should_panic(expected = "background")]
    fn clutter_rejected_as_labeled_object() {
        let mut b = TrainingBatch::new();
        let mut s = day_signal(0, 0.8, 1);
        s.true_class = CLUTTER_CLASS;
        b.add_labeled_object(&s);
    }
}
