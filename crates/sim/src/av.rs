//! The autonomous-vehicle world: a NuScenes-like 3D scene generator with a
//! LIDAR-like detector and a camera pipeline, sampled at 2 Hz.
//!
//! The paper's AV experiments need *time-aligned point-cloud and image
//! detections* (§5.1): the `agree` assertion projects LIDAR 3D boxes onto
//! the camera plane and checks overlap with the camera detections. This
//! module provides both sides: ground-truth 3D vehicles, a LIDAR detector
//! with distance-dependent recall and occasional size errors (Figure 8b
//! shows Second predicting a truck "too large"), and camera-facing
//! [`ObjectSignal`]s for the trainable [`SimDetector`].
//!
//! Matching the paper, scenes are sampled at 2 Hz — too sparse for the
//! `flicker` assertion ("we found that the dataset was not sampled
//! frequently enough (at 2 Hz) for these assertions", §5.1), which the
//! integration tests verify.
//!
//! [`SimDetector`]: crate::detector::SimDetector

use omg_eval::GtBox;
use omg_geom::{BBox3D, CameraIntrinsics, CameraModel, Vec3};
use rand::rngs::StdRng;
use rand::Rng;

use crate::signal::{normal, CLUTTER_CLASS};
use crate::{derive_rng, AppearanceModel, DomainConditions, ObjectSignal};

/// Configuration of an [`AvWorld`].
#[derive(Debug, Clone, PartialEq)]
pub struct AvConfig {
    /// Samples per scene (NuScenes scenes are 20 s at 2 Hz).
    pub samples_per_scene: usize,
    /// Sampling period in seconds (2 Hz ⇒ 0.5 s).
    pub sample_period: f64,
    /// Min/max number of vehicles per scene.
    pub vehicles: (usize, usize),
    /// LIDAR false-positive rate per sample.
    pub lidar_fp_rate: f64,
    /// Probability that a LIDAR detection badly inflates the box size.
    pub lidar_size_error_rate: f64,
    /// Camera appearance conditions (dusk-ish: harder than day).
    pub conditions: DomainConditions,
}

impl Default for AvConfig {
    fn default() -> Self {
        Self {
            samples_per_scene: 20,
            sample_period: 0.5,
            vehicles: (3, 8),
            lidar_fp_rate: 0.05,
            lidar_size_error_rate: 0.08,
            conditions: DomainConditions {
                contrast: 0.45,
                brightness: 0.35,
                channel_bias: [0.0, 0.12, 0.0],
                noise: 0.14,
            },
        }
    }
}

/// A LIDAR detection: an oriented 3D box with a confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct LidarDetection {
    /// The detected 3D box.
    pub bbox: BBox3D,
    /// Detection confidence in `[0, 1]`.
    pub score: f64,
    /// Track id of the underlying object, or `None` for a false positive
    /// (simulator-side ground truth).
    pub source_track: Option<u64>,
}

/// One 2 Hz sample of the AV world.
#[derive(Debug, Clone, PartialEq)]
pub struct AvSample {
    /// Scene index.
    pub scene: u64,
    /// Sample index within the scene.
    pub index: usize,
    /// Timestamp in seconds from the start of the scene.
    pub time: f64,
    /// Camera-facing signals (visible objects + clutter) for the
    /// trainable camera detector.
    pub signals: Vec<ObjectSignal>,
    /// LIDAR detections for this sample.
    pub lidar: Vec<LidarDetection>,
    /// The camera model (needed by the `agree` assertion to project).
    pub camera: CameraModel,
    /// Ground-truth 2D boxes of camera-visible vehicles.
    pub gt_2d: Vec<GtBox>,
    /// Ground-truth 3D boxes (with track ids) of all vehicles.
    pub gt_3d: Vec<(u64, BBox3D, usize)>,
}

/// Generates NuScenes-like scenes deterministically by scene index.
#[derive(Debug, Clone)]
pub struct AvWorld {
    config: AvConfig,
    seed: u64,
    camera: CameraModel,
    appearance: AppearanceModel,
}

impl AvWorld {
    /// Creates a world; scene `i` is fully determined by `(seed, i)`.
    pub fn new(config: AvConfig, seed: u64) -> Self {
        let camera = CameraModel::new(
            // PANIC: constant intrinsics; the constructor accepts them.
            CameraIntrinsics::centered(1000.0, 1600.0, 900.0).expect("valid intrinsics"),
            Vec3::new(0.0, 0.0, 1.6),
            0.0,
        );
        let appearance = AppearanceModel::new(config.conditions.clone());
        Self {
            config,
            seed,
            camera,
            appearance,
        }
    }

    /// The world's configuration.
    pub fn config(&self) -> &AvConfig {
        &self.config
    }

    /// The ego camera.
    pub fn camera(&self) -> &CameraModel {
        &self.camera
    }

    /// Generates one scene's samples.
    pub fn scene(&self, scene_idx: u64) -> Vec<AvSample> {
        let mut rng = derive_rng(self.seed, scene_idx.wrapping_mul(2) + 1);
        let n_vehicles = rng.gen_range(self.config.vehicles.0..=self.config.vehicles.1);
        // Spawn vehicles ahead of the ego with small velocities.
        struct Vehicle {
            track: u64,
            class: usize,
            pos: Vec3,
            vel: Vec3,
            size: Vec3,
            quality: f64,
        }
        let mut vehicles: Vec<Vehicle> = (0..n_vehicles)
            .map(|v| {
                let class = match rng.gen_range(0.0..1.0) {
                    p if p < 0.7 => 0,
                    p if p < 0.9 => 1,
                    _ => 2,
                };
                let size = match class {
                    0 => Vec3::new(4.5, 1.9, 1.6),
                    1 => Vec3::new(7.5, 2.5, 2.8),
                    _ => Vec3::new(11.0, 2.9, 3.4),
                };
                Vehicle {
                    track: scene_idx * 1000 + v as u64,
                    class,
                    pos: Vec3::new(
                        rng.gen_range(8.0..65.0),
                        rng.gen_range(-8.0..8.0),
                        size.z / 2.0,
                    ),
                    vel: Vec3::new(rng.gen_range(-2.0..2.0), rng.gen_range(-0.4..0.4), 0.0),
                    size,
                    quality: rng.gen_range(0.4..1.0),
                }
            })
            .collect();

        let mut samples = Vec::with_capacity(self.config.samples_per_scene);
        for idx in 0..self.config.samples_per_scene {
            let time = idx as f64 * self.config.sample_period;
            for v in &mut vehicles {
                v.pos = v.pos + v.vel * self.config.sample_period;
            }
            let mut signals = Vec::new();
            let mut gt_2d = Vec::new();
            let mut gt_3d = Vec::new();
            for v in &vehicles {
                // PANIC: vehicle sizes are sampled from positive ranges,
                // the only thing BBox3D::new rejects.
                let box3 = BBox3D::new(v.pos, v.size, 0.0).expect("valid 3d box");
                gt_3d.push((v.track, box3, v.class));
                let Some(bbox2) = self.camera.project_box(&box3) else {
                    continue;
                };
                gt_2d.push(GtBox {
                    bbox: bbox2,
                    class: v.class,
                });
                let dist = v.pos.norm();
                let dist_quality = (1.1 - dist / 55.0).clamp(0.15, 1.0);
                let size_norm = ((bbox2.area() / (1600.0 * 900.0)).sqrt()).clamp(0.0, 1.0);
                let mut sig_rng = derive_rng(
                    self.seed ^ 0xA516_7A15,
                    v.track.wrapping_mul(10_000).wrapping_add(idx as u64),
                );
                let appearance = self.appearance.object_appearance(
                    v.class,
                    v.quality * dist_quality,
                    size_norm,
                    0.0,
                    (v.vel.norm() / 3.0).clamp(0.0, 1.0),
                    &mut sig_rng,
                );
                signals.push(ObjectSignal {
                    track_id: v.track,
                    true_class: v.class,
                    bbox: bbox2,
                    appearance,
                    quality: v.quality * dist_quality,
                });
            }
            // A couple of camera clutter patches per sample.
            let mut clutter_rng = derive_rng(
                self.seed ^ 0xC1_077E2,
                scene_idx.wrapping_mul(997).wrapping_add(idx as u64),
            );
            for c in 0..2 {
                let w = clutter_rng.gen_range(30.0..90.0);
                let h = clutter_rng.gen_range(25.0..70.0);
                let x = clutter_rng.gen_range(0.0..1600.0 - w);
                let y = clutter_rng.gen_range(350.0..900.0 - h);
                // PANIC: w, h > 0 by the sampled ranges, so the corners
                // are ordered and BBox2D::new accepts them.
                let bbox = omg_geom::BBox2D::new(x, y, x + w, y + h).expect("valid clutter");
                let size_norm = ((bbox.area() / (1600.0 * 900.0)).sqrt()).clamp(0.0, 1.0);
                let appearance = self
                    .appearance
                    .clutter_appearance(size_norm, &mut clutter_rng);
                signals.push(ObjectSignal {
                    track_id: u64::MAX - (scene_idx * 100 + idx as u64 * 4 + c),
                    true_class: CLUTTER_CLASS,
                    bbox,
                    appearance,
                    quality: 0.5,
                });
            }

            let lidar = self.lidar_detections(scene_idx, idx, &gt_3d, &mut rng);
            samples.push(AvSample {
                scene: scene_idx,
                index: idx,
                time,
                signals,
                lidar,
                camera: self.camera,
                gt_2d,
                gt_3d,
            });
        }
        samples
    }

    /// Generates a contiguous range of scenes.
    pub fn scenes(&self, range: std::ops::Range<u64>) -> Vec<Vec<AvSample>> {
        range.map(|i| self.scene(i)).collect()
    }

    fn lidar_detections(
        &self,
        scene_idx: u64,
        sample_idx: usize,
        gt_3d: &[(u64, BBox3D, usize)],
        rng: &mut StdRng,
    ) -> Vec<LidarDetection> {
        let mut out = Vec::new();
        for (track, box3, _class) in gt_3d {
            let dist = box3.center().norm();
            // LIDAR recall decays with distance; geometry is otherwise
            // accurate (its failure modes are independent of the
            // camera's).
            let p_det = 0.97 / (1.0 + ((dist - 52.0) / 7.0).exp());
            let mut det_rng = derive_rng(
                self.seed ^ 0x71DA2,
                track
                    .wrapping_mul(100_000)
                    .wrapping_add(scene_idx * 251 + sample_idx as u64),
            );
            if det_rng.gen::<f64>() >= p_det {
                continue;
            }
            let jitter = Vec3::new(
                normal(&mut det_rng) * 0.25,
                normal(&mut det_rng) * 0.25,
                0.0,
            );
            let mut size = box3.size();
            if det_rng.gen::<f64>() < self.config.lidar_size_error_rate {
                // The Figure 8b failure: the box comes back far too large.
                let inflate = det_rng.gen_range(1.6..2.6);
                size = Vec3::new(size.x * inflate, size.y * inflate, size.z);
            }
            // PANIC: size scales a valid box's size by positive factors.
            let bbox =
                BBox3D::new(box3.center() + jitter, size, box3.yaw()).expect("valid lidar box");
            out.push(LidarDetection {
                bbox,
                score: (p_det * det_rng.gen_range(0.85..1.0)).clamp(0.05, 0.99),
                source_track: Some(*track),
            });
        }
        // Occasional LIDAR ghosts.
        if rng.gen::<f64>() < self.config.lidar_fp_rate {
            let pos = Vec3::new(rng.gen_range(8.0..50.0), rng.gen_range(-8.0..8.0), 0.8);
            // PANIC: constant positive ghost dimensions.
            let bbox = BBox3D::new(pos, Vec3::new(3.5, 1.6, 1.6), 0.0).expect("valid ghost");
            out.push(LidarDetection {
                bbox,
                score: rng.gen_range(0.3..0.7),
                source_track: None,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> AvWorld {
        AvWorld::new(AvConfig::default(), 11)
    }

    #[test]
    fn scenes_are_deterministic() {
        let w = world();
        assert_eq!(w.scene(3), w.scene(3));
        assert_ne!(w.scene(3), w.scene(4));
    }

    #[test]
    fn scene_has_expected_sampling() {
        let w = world();
        let scene = w.scene(0);
        assert_eq!(scene.len(), 20);
        for (i, s) in scene.iter().enumerate() {
            assert_eq!(s.index, i);
            assert!((s.time - i as f64 * 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn visible_objects_have_signals_and_gt() {
        let w = world();
        for s in w.scene(1) {
            let visible = s.signals.iter().filter(|x| !x.is_clutter()).count();
            assert_eq!(visible, s.gt_2d.len());
            assert!(s.gt_3d.len() >= s.gt_2d.len());
        }
    }

    #[test]
    fn lidar_mostly_detects_near_objects() {
        let w = world();
        let mut near_total = 0usize;
        let mut near_detected = 0usize;
        for scene in 0..20u64 {
            for s in w.scene(scene) {
                for (track, box3, _) in &s.gt_3d {
                    if box3.center().norm() < 35.0 {
                        near_total += 1;
                        if s.lidar.iter().any(|l| l.source_track == Some(*track)) {
                            near_detected += 1;
                        }
                    }
                }
            }
        }
        assert!(near_total > 50);
        let recall = near_detected as f64 / near_total as f64;
        assert!(recall > 0.85, "near-range LIDAR recall too low: {recall}");
    }

    #[test]
    fn lidar_recall_decays_with_distance() {
        let w = world();
        let mut far_total = 0usize;
        let mut far_detected = 0usize;
        for scene in 0..40u64 {
            for s in w.scene(scene) {
                for (track, box3, _) in &s.gt_3d {
                    if box3.center().norm() > 55.0 {
                        far_total += 1;
                        if s.lidar.iter().any(|l| l.source_track == Some(*track)) {
                            far_detected += 1;
                        }
                    }
                }
            }
        }
        if far_total > 20 {
            let recall = far_detected as f64 / far_total as f64;
            assert!(recall < 0.75, "far-range LIDAR recall too high: {recall}");
        }
    }

    #[test]
    fn lidar_size_errors_occur_at_configured_rate() {
        let w = world();
        let mut inflated = 0usize;
        let mut total = 0usize;
        for scene in 0..60u64 {
            for s in w.scene(scene) {
                for l in &s.lidar {
                    let Some(track) = l.source_track else {
                        continue;
                    };
                    let (_, gt, _) = s.gt_3d.iter().find(|(t, _, _)| *t == track).unwrap();
                    total += 1;
                    if l.bbox.size().x > gt.size().x * 1.4 {
                        inflated += 1;
                    }
                }
            }
        }
        let rate = inflated as f64 / total as f64;
        assert!(
            (0.03..0.15).contains(&rate),
            "size-error rate {rate} out of expected band"
        );
    }

    #[test]
    fn projections_of_gt_boxes_land_on_image() {
        let w = world();
        for s in w.scene(2) {
            for g in &s.gt_2d {
                assert!(g.bbox.x1() >= 0.0 && g.bbox.x2() <= 1600.0);
                assert!(g.bbox.y1() >= 0.0 && g.bbox.y2() <= 900.0);
            }
        }
    }

    #[test]
    fn clutter_is_present_each_sample() {
        let w = world();
        for s in w.scene(5) {
            assert_eq!(s.signals.iter().filter(|x| x.is_clutter()).count(), 2);
        }
    }
}
