//! A clutter-heavy crowded-scene generator for asymptotic benchmarks.
//!
//! The night-street world ([`crate::traffic`]) tops out at a few dozen
//! boxes per frame — realistic for one camera, but useless for measuring
//! how the matchers *scale*. This world generates frames with an exact,
//! configurable box count (hundreds to thousands), mixing dense
//! duplicate clusters (the `multibox` trigger) with uniform clutter, and
//! keeps every object persistent frame-to-frame so detection-to-track
//! association has real work to do. It is the workload behind
//! `exp_throughput --crowded` and `benchmarks/BENCH_crowded.json`.

use omg_eval::ScoredBox;
use omg_geom::BBox2D;
use rand::rngs::StdRng;
use rand::Rng;

use crate::derive_rng;

/// Configuration of a [`CrowdWorld`].
#[derive(Debug, Clone, PartialEq)]
pub struct CrowdConfig {
    /// Image width in pixels.
    pub width: f64,
    /// Image height in pixels.
    pub height: f64,
    /// Exact number of boxes emitted per frame.
    pub boxes_per_frame: usize,
    /// Fraction of boxes that live in dense duplicate clusters (the rest
    /// are uniform clutter).
    pub cluster_fraction: f64,
    /// Boxes per dense cluster.
    pub cluster_size: usize,
    /// Number of distinct class labels.
    pub num_classes: usize,
}

impl CrowdConfig {
    /// The clutter-heavy benchmark configuration: a 1280×720 frame with
    /// the requested density, 40% of boxes in 5-box duplicate clusters.
    pub fn clutter_heavy(boxes_per_frame: usize) -> Self {
        Self {
            width: 1280.0,
            height: 720.0,
            boxes_per_frame,
            cluster_fraction: 0.4,
            cluster_size: 5,
            num_classes: 3,
        }
    }
}

/// One persistent simulated object.
#[derive(Debug, Clone)]
struct CrowdObject {
    /// Cluster anchor this object belongs to (clutter objects have their
    /// own private anchor).
    anchor: usize,
    /// Offset from the anchor, pixels.
    dx: f64,
    dy: f64,
    w: f64,
    h: f64,
    class: usize,
    score: f64,
}

/// The evolving crowded scene. Call [`CrowdWorld::step`] once per frame.
///
/// Objects never enter or leave: every frame holds exactly
/// `boxes_per_frame` boxes, anchors drift horizontally (wrapping at the
/// frame edge) and every box jitters slightly, so consecutive frames are
/// associable but not identical. Deterministic per `(config, seed)`.
#[derive(Debug, Clone)]
pub struct CrowdWorld {
    config: CrowdConfig,
    rng: StdRng,
    objects: Vec<CrowdObject>,
    /// Per-anchor `(x, y, vx)` state.
    anchors: Vec<(f64, f64, f64)>,
    frame: u64,
}

impl CrowdWorld {
    /// Creates a world; all randomness derives from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the config has non-positive dimensions, a cluster size
    /// below 2, no classes, or a cluster fraction outside `[0, 1]`.
    pub fn new(config: CrowdConfig, seed: u64) -> Self {
        assert!(
            config.width > 0.0 && config.height > 0.0,
            "frame dimensions must be positive"
        );
        assert!(config.cluster_size >= 2, "clusters need at least 2 boxes");
        assert!(config.num_classes > 0, "need at least one class");
        assert!(
            (0.0..=1.0).contains(&config.cluster_fraction),
            "cluster fraction must be in [0, 1]"
        );
        let mut rng = derive_rng(seed, 0xC80);
        let mut anchors: Vec<(f64, f64, f64)> = Vec::new();
        let mut objects: Vec<CrowdObject> = Vec::new();
        let new_anchor = |rng: &mut StdRng, anchors: &mut Vec<(f64, f64, f64)>| {
            anchors.push((
                rng.gen_range(0.0..config.width),
                rng.gen_range(0.0..config.height * 0.9),
                rng.gen_range(-6.0..6.0),
            ));
            anchors.len() - 1
        };
        let clustered = ((config.boxes_per_frame as f64) * config.cluster_fraction) as usize;
        while objects.len() < config.boxes_per_frame {
            let in_cluster = objects.len() < clustered;
            let members = if in_cluster {
                config
                    .cluster_size
                    .min(config.boxes_per_frame - objects.len())
            } else {
                1
            };
            let anchor = new_anchor(&mut rng, &mut anchors);
            let class = rng.gen_range(0..config.num_classes);
            let w = rng.gen_range(30.0..90.0);
            let h = rng.gen_range(25.0..70.0);
            for _ in 0..members {
                // Cluster members sit nearly on top of each other (the
                // multibox duplicate pattern); clutter sits alone.
                let spread = if in_cluster { 6.0 } else { 0.0 };
                objects.push(CrowdObject {
                    anchor,
                    dx: rng.gen_range(-1.0..1.0) * spread,
                    dy: rng.gen_range(-1.0..1.0) * spread,
                    w: w * rng.gen_range(0.92..1.08),
                    h: h * rng.gen_range(0.92..1.08),
                    class,
                    score: rng.gen_range(0.3..1.0),
                });
            }
        }
        Self {
            config,
            rng,
            objects,
            anchors,
            frame: 0,
        }
    }

    /// The world's configuration.
    pub fn config(&self) -> &CrowdConfig {
        &self.config
    }

    /// Advances one frame and returns its detections (always exactly
    /// `boxes_per_frame` of them, in stable object order).
    pub fn step(&mut self) -> Vec<ScoredBox> {
        let (w, h) = (self.config.width, self.config.height);
        for a in &mut self.anchors {
            a.0 = (a.0 + a.2).rem_euclid(w);
        }
        let dets = self
            .objects
            .iter()
            .map(|o| {
                let (ax, ay, _) = self.anchors[o.anchor];
                let jx = self.rng.gen_range(-1.5..1.5);
                let jy = self.rng.gen_range(-1.5..1.5);
                let cx = (ax + o.dx + jx).clamp(0.0, w);
                let cy = (ay + o.dy + jy).clamp(0.0, h);
                ScoredBox {
                    bbox: BBox2D::from_center(cx, cy, o.w, o.h).expect("valid crowd box"),
                    class: o.class,
                    score: o.score,
                }
            })
            .collect();
        self.frame += 1;
        dets
    }

    /// Generates the next `n` frames.
    pub fn steps(&mut self, n: usize) -> Vec<Vec<ScoredBox>> {
        (0..n).map(|_| self.step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_box_count_every_frame() {
        for n in [1, 2, 100, 997] {
            let mut w = CrowdWorld::new(CrowdConfig::clutter_heavy(n), 1);
            for frame in w.steps(3) {
                assert_eq!(frame.len(), n);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CrowdWorld::new(CrowdConfig::clutter_heavy(200), 7).steps(5);
        let b = CrowdWorld::new(CrowdConfig::clutter_heavy(200), 7).steps(5);
        assert_eq!(a, b);
        let c = CrowdWorld::new(CrowdConfig::clutter_heavy(200), 8).steps(5);
        assert_ne!(a, c);
    }

    #[test]
    fn clusters_actually_overlap() {
        // The clustered share of the frame must contain heavily
        // overlapping same-class boxes — otherwise the benchmark would
        // not exercise the multibox matcher.
        let mut w = CrowdWorld::new(CrowdConfig::clutter_heavy(300), 3);
        let frame = w.step();
        let overlapping = frame
            .iter()
            .enumerate()
            .flat_map(|(i, a)| frame[i + 1..].iter().map(move |b| (a, b)))
            .filter(|(a, b)| a.class == b.class && a.bbox.iou(&b.bbox) >= 0.3)
            .count();
        assert!(overlapping >= 100, "only {overlapping} overlapping pairs");
    }

    #[test]
    fn frames_are_associable() {
        // Consecutive frames of the same object overlap strongly: the
        // tracker can follow the crowd.
        let mut w = CrowdWorld::new(CrowdConfig::clutter_heavy(150), 5);
        let f0 = w.step();
        let f1 = w.step();
        let mut carried = 0;
        for (a, b) in f0.iter().zip(&f1) {
            if a.bbox.iou(&b.bbox) >= 0.5 {
                carried += 1;
            }
        }
        assert!(
            carried > 100,
            "only {carried}/150 objects track across frames"
        );
    }

    #[test]
    fn boxes_stay_near_the_frame() {
        let mut w = CrowdWorld::new(CrowdConfig::clutter_heavy(100), 2);
        for frame in w.steps(10) {
            for d in frame {
                let (cx, cy) = d.bbox.center();
                assert!((-1.0..=1281.0).contains(&cx));
                assert!((-1.0..=721.0).contains(&cy));
            }
        }
    }

    #[test]
    #[should_panic(expected = "cluster")]
    fn tiny_clusters_rejected() {
        let cfg = CrowdConfig {
            cluster_size: 1,
            ..CrowdConfig::clutter_heavy(10)
        };
        CrowdWorld::new(cfg, 1);
    }
}
