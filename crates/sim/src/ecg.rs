//! The ECG rhythm world: a CINC17-like stream of classified signal
//! windows.
//!
//! The paper's medical task classifies atrial fibrillation from
//! single-lead ECG (Rajpurkar et al. 2019, evaluated on the CINC17
//! dataset). The domain assertion encodes the European Society of
//! Cardiology guideline that AF "rhythms need to persist for at least 30
//! seconds" (§4.1): predictions must not oscillate `A → B → A` within a
//! 30-second span.
//!
//! This module generates a hidden-Markov rhythm process over the CINC17
//! classes — Normal, AF, Other, Noisy — emitting one feature window every
//! `stride` seconds. True rhythms dwell far longer than 30 s, so *every*
//! fast oscillation in predictions is a model error, which is why the
//! assertion achieves the paper's 100% precision (Table 3).

use rand::rngs::StdRng;
use rand::Rng;

use crate::derive_rng;
use crate::signal::normal;

/// Number of rhythm classes (CINC17: normal, AF, other, noisy).
pub const ECG_CLASSES: usize = 4;

/// Dimensionality of a window's feature vector.
pub const ECG_DIM: usize = 8;

/// Human-readable class names in index order.
pub const ECG_CLASS_NAMES: [&str; ECG_CLASSES] = ["normal", "af", "other", "noisy"];

/// Configuration of an [`EcgWorld`].
#[derive(Debug, Clone, PartialEq)]
pub struct EcgConfig {
    /// Seconds between consecutive windows.
    pub stride_secs: f64,
    /// Mean dwell time of a rhythm, in windows.
    pub mean_dwell_windows: f64,
    /// Minimum dwell time of a rhythm, in windows. The clinical premise
    /// the assertion encodes — rhythms persist at least 30 s — must hold
    /// in the ground truth, so the minimum dwell exceeds the guideline
    /// (4 windows × 10 s = 40 s > 30 s).
    pub min_dwell_windows: u32,
    /// Class-conditional feature noise (controls the Bayes error).
    pub noise: f64,
    /// AR(1) correlation of the noise across consecutive windows.
    /// Physiological artifacts (electrode contact, baseline wander)
    /// persist for tens of seconds, so classifier errors cluster in time
    /// rather than flipping window-to-window.
    pub noise_correlation: f64,
}

impl Default for EcgConfig {
    fn default() -> Self {
        Self {
            stride_secs: 10.0,
            // ~12 windows x 10 s = 2 minutes mean dwell: real rhythms
            // persist far beyond the 30 s guideline.
            mean_dwell_windows: 12.0,
            min_dwell_windows: 4,
            noise: 0.70,
            noise_correlation: 0.75,
        }
    }
}

/// One classified window of ECG signal.
#[derive(Debug, Clone, PartialEq)]
pub struct EcgPoint {
    /// Window start time in seconds.
    pub time: f64,
    /// Feature vector (length [`ECG_DIM`]): summary statistics a real
    /// pipeline would extract (RR-interval mean/variance, P-wave power,
    /// amplitude...).
    pub features: Vec<f64>,
    /// The hidden rhythm class.
    pub true_class: usize,
}

/// Class-conditional feature means. The first four dimensions are
/// class-prototype channels; the last four are correlated physiological
/// statistics (RR mean, RR variance, P-wave power, amplitude).
const CLASS_MEANS: [[f64; ECG_DIM]; ECG_CLASSES] = [
    // normal: regular RR, strong P wave
    [1.0, 0.0, 0.0, 0.0, 0.8, 0.1, 0.9, 0.7],
    // AF: irregular RR, absent P wave
    [0.0, 1.0, 0.0, 0.0, 0.6, 0.9, 0.05, 0.6],
    // other arrhythmia: slow, odd morphology
    [0.0, 0.0, 1.0, 0.0, 1.1, 0.5, 0.5, 0.5],
    // noisy: everything washed out
    [0.0, 0.0, 0.0, 1.0, 0.7, 0.6, 0.4, 0.2],
];

/// A continuous stream of ECG windows from a hidden-Markov rhythm
/// process.
#[derive(Debug, Clone)]
pub struct EcgWorld {
    config: EcgConfig,
    rng: StdRng,
    state: usize,
    window_idx: u64,
    /// Windows remaining before the rhythm may switch again.
    dwell_remaining: u32,
    /// AR(1) noise state per feature dimension.
    noise_state: [f64; ECG_DIM],
}

impl EcgWorld {
    /// Creates a world; the stream is deterministic given `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the stride or dwell time is non-positive.
    pub fn new(config: EcgConfig, seed: u64) -> Self {
        assert!(config.stride_secs > 0.0, "stride must be positive");
        assert!(
            config.mean_dwell_windows > 1.0,
            "dwell must exceed one window"
        );
        assert!(
            (0.0..1.0).contains(&config.noise_correlation),
            "noise correlation must be in [0, 1)"
        );
        let mut rng = derive_rng(seed, 0xEC6);
        let state = rng.gen_range(0..ECG_CLASSES);
        let min_dwell = config.min_dwell_windows;
        Self {
            config,
            rng,
            state,
            window_idx: 0,
            dwell_remaining: min_dwell,
            noise_state: [0.0; ECG_DIM],
        }
    }

    /// The world's configuration.
    pub fn config(&self) -> &EcgConfig {
        &self.config
    }

    /// Generates the next window.
    pub fn next_window(&mut self) -> EcgPoint {
        // Sticky Markov chain with a minimum dwell: switch with
        // probability 1/(mean - min) once the minimum has elapsed.
        self.dwell_remaining = self.dwell_remaining.saturating_sub(1);
        let residual_mean =
            (self.config.mean_dwell_windows - self.config.min_dwell_windows as f64).max(1.0);
        if self.dwell_remaining == 0 && self.rng.gen::<f64>() < 1.0 / residual_mean {
            // Class marginals roughly follow CINC17: normal dominates.
            let target = match self.rng.gen_range(0.0..1.0) {
                p if p < 0.55 => 0,
                p if p < 0.75 => 1,
                p if p < 0.92 => 2,
                _ => 3,
            };
            if target != self.state {
                self.state = target;
                self.dwell_remaining = self.config.min_dwell_windows;
            }
        }
        let mut features = Vec::with_capacity(ECG_DIM);
        // The noisy class is intrinsically harder: extra feature noise.
        let noise = self.config.noise * if self.state == 3 { 1.5 } else { 1.0 };
        let rho = self.config.noise_correlation;
        // PANIC: state transitions stay in 0..CLASS_MEANS.len().
        for (ns, mean) in self.noise_state.iter_mut().zip(&CLASS_MEANS[self.state]) {
            // AR(1): persistent artifacts rather than white noise.
            *ns = rho * *ns + (1.0 - rho * rho).sqrt() * normal(&mut self.rng);
            features.push(mean + *ns * noise);
        }
        let point = EcgPoint {
            time: self.window_idx as f64 * self.config.stride_secs,
            features,
            true_class: self.state,
        };
        self.window_idx += 1;
        point
    }

    /// Generates the next `n` windows.
    pub fn windows(&mut self, n: usize) -> Vec<EcgPoint> {
        (0..n).map(|_| self.next_window()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let a = EcgWorld::new(EcgConfig::default(), 5).windows(100);
        let b = EcgWorld::new(EcgConfig::default(), 5).windows(100);
        assert_eq!(a, b);
        let c = EcgWorld::new(EcgConfig::default(), 6).windows(100);
        assert_ne!(a, c);
    }

    #[test]
    fn times_advance_by_stride() {
        let pts = EcgWorld::new(EcgConfig::default(), 1).windows(5);
        for (i, p) in pts.iter().enumerate() {
            assert!((p.time - i as f64 * 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn all_classes_eventually_appear() {
        let pts = EcgWorld::new(EcgConfig::default(), 2).windows(3000);
        for c in 0..ECG_CLASSES {
            assert!(
                pts.iter().any(|p| p.true_class == c),
                "class {c} never appeared"
            );
        }
    }

    #[test]
    fn normal_rhythm_dominates() {
        let pts = EcgWorld::new(EcgConfig::default(), 3).windows(5000);
        let normal_frac = pts.iter().filter(|p| p.true_class == 0).count() as f64 / 5000.0;
        assert!(
            normal_frac > 0.35,
            "normal rhythm should dominate: {normal_frac}"
        );
    }

    #[test]
    fn rhythms_dwell_beyond_the_guideline() {
        // Mean dwell must comfortably exceed 30 s so true transitions are
        // never flagged by the 30 s assertion.
        let pts = EcgWorld::new(EcgConfig::default(), 4).windows(5000);
        let mut dwells = Vec::new();
        let mut run = 1usize;
        for w in pts.windows(2) {
            if w[1].true_class == w[0].true_class {
                run += 1;
            } else {
                dwells.push(run);
                run = 1;
            }
        }
        let mean_dwell_secs = dwells.iter().sum::<usize>() as f64 / dwells.len() as f64 * 10.0;
        assert!(
            mean_dwell_secs > 60.0,
            "mean dwell {mean_dwell_secs}s too short"
        );
    }

    #[test]
    fn features_separate_classes_imperfectly() {
        // Prototype channel should be informative but noisy (the model
        // will make errors, as the paper's does).
        let pts = EcgWorld::new(EcgConfig::default(), 7).windows(2000);
        let mut hits = 0usize;
        for p in &pts {
            let argmax = (0..ECG_CLASSES)
                .max_by(|&a, &b| p.features[a].partial_cmp(&p.features[b]).unwrap())
                .unwrap();
            hits += usize::from(argmax == p.true_class);
        }
        let naive_acc = hits as f64 / pts.len() as f64;
        assert!(naive_acc > 0.5, "features too noisy: {naive_acc}");
        assert!(naive_acc < 0.95, "features too clean: {naive_acc}");
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn bad_stride_rejected() {
        EcgWorld::new(
            EcgConfig {
                stride_secs: 0.0,
                ..EcgConfig::default()
            },
            1,
        );
    }
}
