//! The `night-street` traffic-scene simulator.
//!
//! Replaces the paper's `jackson` night-street video: a fixed camera over
//! a multi-lane road, vehicles entering and leaving with constant
//! velocities, occlusion between lanes, and night-time appearance
//! conditions. Every frame carries ground-truth boxes and the
//! [`ObjectSignal`]s the trainable detector consumes.

use omg_eval::GtBox;
use omg_geom::BBox2D;
use rand::rngs::StdRng;
use rand::Rng;

use crate::signal::CLUTTER_CLASS;
use crate::{derive_rng, AppearanceModel, DomainConditions, ObjectSignal};

/// Configuration of a [`TrafficWorld`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Frames per second of the simulated video.
    pub fps: f64,
    /// Image width in pixels.
    pub width: f64,
    /// Image height in pixels.
    pub height: f64,
    /// Number of lanes.
    pub lanes: usize,
    /// Per-frame probability that a new vehicle enters a lane.
    pub spawn_prob: f64,
    /// Number of persistent clutter patches (reflections, signage).
    pub clutter_patches: usize,
    /// Appearance conditions (day for pretraining-like scenes, night for
    /// deployment).
    pub conditions: DomainConditions,
}

impl TrafficConfig {
    /// The deployment configuration used by the experiments: a 10 fps
    /// night stream (the paper's video is 30 fps; 10 fps preserves every
    /// error mechanism at a third of the compute).
    pub fn night_street() -> Self {
        Self {
            fps: 10.0,
            width: 1280.0,
            height: 720.0,
            lanes: 4,
            spawn_prob: 0.02,
            clutter_patches: 6,
            conditions: DomainConditions::night(),
        }
    }

    /// A daytime variant of the same street.
    pub fn day_street() -> Self {
        Self {
            conditions: DomainConditions::day(),
            ..Self::night_street()
        }
    }
}

/// One vehicle in flight.
#[derive(Debug, Clone, PartialEq)]
struct Car {
    track_id: u64,
    class: usize,
    lane: usize,
    /// Box-center x in pixels.
    x: f64,
    /// Pixels per frame; sign encodes direction.
    speed: f64,
    width: f64,
    height: f64,
    /// Intrinsic visual quality (paint darkness, dirt, lighting).
    quality: f64,
}

/// One frame of ground truth plus the detector-facing signals.
#[derive(Debug, Clone, PartialEq)]
pub struct GtFrame {
    /// Frame index from the start of the stream.
    pub index: u64,
    /// Timestamp in seconds.
    pub time: f64,
    /// Signals for everything in the frame: real objects first, then
    /// clutter patches. This is what [`SimDetector::detect_frame`]
    /// consumes.
    ///
    /// [`SimDetector::detect_frame`]: crate::detector::SimDetector::detect_frame
    pub signals: Vec<ObjectSignal>,
}

impl GtFrame {
    /// Ground-truth boxes of the real objects (excludes clutter) in the
    /// evaluation format.
    pub fn gt_boxes(&self) -> Vec<GtBox> {
        self.signals
            .iter()
            .filter(|s| !s.is_clutter())
            .map(|s| GtBox {
                bbox: s.bbox,
                class: s.true_class,
            })
            .collect()
    }

    /// The signal for a given track id, if present in this frame.
    pub fn signal_for_track(&self, track_id: u64) -> Option<&ObjectSignal> {
        self.signals.iter().find(|s| s.track_id == track_id)
    }
}

/// The evolving traffic world. Call [`TrafficWorld::step`] once per frame.
#[derive(Debug, Clone)]
pub struct TrafficWorld {
    config: TrafficConfig,
    appearance: AppearanceModel,
    rng: StdRng,
    cars: Vec<Car>,
    next_track: u64,
    frame: u64,
    clutter: Vec<(u64, BBox2D, f64)>,
}

impl TrafficWorld {
    /// Creates a world; all randomness derives from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the config has no lanes or a non-positive frame rate.
    pub fn new(config: TrafficConfig, seed: u64) -> Self {
        assert!(config.lanes > 0, "need at least one lane");
        assert!(config.fps > 0.0, "frame rate must be positive");
        let mut rng = derive_rng(seed, 0x7EA);
        let appearance = AppearanceModel::new(config.conditions.clone());
        // Persistent clutter patches at fixed locations.
        let clutter = (0..config.clutter_patches)
            .map(|i| {
                let w = rng.gen_range(20.0..70.0);
                let h = rng.gen_range(15.0..50.0);
                let x = rng.gen_range(0.0..config.width - w);
                let y = rng.gen_range(0.0..config.height - h);
                (
                    u64::MAX - i as u64, // clutter ids from the top
                    // PANIC: w, h > 0 by the sampled ranges above.
                    BBox2D::new(x, y, x + w, y + h).expect("valid clutter box"),
                    rng.gen_range(0.3..0.7),
                )
            })
            .collect();
        Self {
            config,
            appearance,
            rng,
            cars: Vec::new(),
            next_track: 0,
            frame: 0,
            clutter,
        }
    }

    /// The world's configuration.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// Number of vehicles currently on screen.
    pub fn active_vehicles(&self) -> usize {
        self.cars.len()
    }

    fn lane_y(&self, lane: usize) -> f64 {
        let band = self.config.height * 0.5;
        let top = self.config.height * 0.35;
        top + band * (lane as f64 + 0.5) / self.config.lanes as f64
    }

    fn spawn(&mut self) {
        for lane in 0..self.config.lanes {
            if !self.rng.gen_bool(self.config.spawn_prob) {
                continue;
            }
            // Even lanes flow left-to-right, odd lanes right-to-left.
            let dir = if lane % 2 == 0 { 1.0 } else { -1.0 };
            let class = match self.rng.gen_range(0.0..1.0) {
                p if p < 0.70 => 0, // car
                p if p < 0.90 => 1, // truck
                _ => 2,             // bus
            };
            let (w, h) = match class {
                0 => (
                    self.rng.gen_range(70.0..110.0),
                    self.rng.gen_range(45.0..65.0),
                ),
                1 => (
                    self.rng.gen_range(110.0..170.0),
                    self.rng.gen_range(60.0..90.0),
                ),
                _ => (
                    self.rng.gen_range(180.0..260.0),
                    self.rng.gen_range(70.0..100.0),
                ),
            };
            let speed = dir * self.rng.gen_range(4.0..12.0) * 30.0 / self.config.fps.max(1.0);
            let x = if dir > 0.0 {
                -w / 2.0
            } else {
                self.config.width + w / 2.0
            };
            // Avoid spawning into a vehicle already at the lane entrance.
            let entrance_clear = self
                .cars
                .iter()
                .all(|c| c.lane != lane || (c.x - x).abs() > (c.width + w) * 0.75);
            if !entrance_clear {
                continue;
            }
            // Bimodal visual quality: most vehicles are well-lit even at
            // night; a small fraction (dark paint, broken street light)
            // are genuinely hard. Systematic errors concentrate on this
            // rare subpopulation — the paper's premise that flagged data
            // is rare and informative.
            let quality = if self.rng.gen_bool(0.12) {
                self.rng.gen_range(0.22..0.40)
            } else {
                self.rng.gen_range(0.72..1.0)
            };
            self.cars.push(Car {
                track_id: self.next_track,
                class,
                lane,
                x,
                speed,
                width: w,
                height: h,
                quality,
            });
            self.next_track += 1;
        }
    }

    fn car_bbox(&self, car: &Car) -> BBox2D {
        let y = self.lane_y(car.lane);
        BBox2D::from_center(car.x, y, car.width, car.height).expect("valid car box")
    }

    /// Advances one frame and returns its ground truth and signals.
    pub fn step(&mut self) -> GtFrame {
        self.spawn();
        for car in &mut self.cars {
            car.x += car.speed;
        }
        let width = self.config.width;
        let cars_snapshot = self.cars.clone();
        self.cars
            .retain(|c| c.x + c.width / 2.0 > -5.0 && c.x - c.width / 2.0 < width + 5.0);

        let mut signals = Vec::new();
        for car in &self.cars {
            let bbox = self.car_bbox(car);
            // Occlusion: fraction covered by vehicles in lanes closer to
            // the camera (higher lane index).
            let mut occlusion: f64 = 0.0;
            for other in &cars_snapshot {
                if other.lane > car.lane && other.track_id != car.track_id {
                    let ob = self.car_bbox(other);
                    occlusion = occlusion.max(bbox.overlap_fraction(&ob));
                }
            }
            let size =
                ((bbox.area() / (self.config.width * self.config.height)).sqrt()).clamp(0.0, 1.0);
            let speed_norm = (car.speed.abs() / 15.0).clamp(0.0, 1.0);
            let mut sig_rng = derive_rng(self.frame.wrapping_mul(0x9E37_79B9), car.track_id);
            let appearance = self.appearance.object_appearance(
                car.class,
                car.quality,
                size,
                occlusion.min(0.95),
                speed_norm,
                &mut sig_rng,
            );
            signals.push(ObjectSignal {
                track_id: car.track_id,
                true_class: car.class,
                bbox,
                appearance,
                quality: car.quality * (1.0 - 0.5 * occlusion),
            });
        }
        for (id, bbox, base_q) in &self.clutter {
            let mut sig_rng = derive_rng(self.frame.wrapping_mul(0x9E37_79B9), *id);
            let size =
                ((bbox.area() / (self.config.width * self.config.height)).sqrt()).clamp(0.0, 1.0);
            let appearance = self.appearance.clutter_appearance(size, &mut sig_rng);
            signals.push(ObjectSignal {
                track_id: *id,
                true_class: CLUTTER_CLASS,
                bbox: *bbox,
                appearance,
                quality: *base_q,
            });
        }

        let frame = GtFrame {
            index: self.frame,
            time: self.frame as f64 / self.config.fps,
            signals,
        };
        self.frame += 1;
        frame
    }

    /// Generates the next `n` frames.
    pub fn steps(&mut self, n: usize) -> Vec<GtFrame> {
        (0..n).map(|_| self.step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NUM_CLASSES;

    fn world(seed: u64) -> TrafficWorld {
        TrafficWorld::new(TrafficConfig::night_street(), seed)
    }

    #[test]
    fn frames_are_sequential_and_timed() {
        let mut w = world(1);
        let frames = w.steps(5);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.index, i as u64);
            assert!((f.time - i as f64 / 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn world_is_deterministic_per_seed() {
        let a = world(7).steps(50);
        let b = world(7).steps(50);
        assert_eq!(a, b);
        let c = world(8).steps(50);
        assert_ne!(a, c);
    }

    #[test]
    fn vehicles_eventually_appear_and_move() {
        let mut w = world(2);
        let frames = w.steps(300);
        let total_objects: usize = frames
            .iter()
            .map(|f| f.signals.iter().filter(|s| !s.is_clutter()).count())
            .sum();
        assert!(total_objects > 50, "traffic too sparse: {total_objects}");
        // Find a track seen in multiple frames and check it moved.
        let mut seen: std::collections::HashMap<u64, Vec<f64>> = Default::default();
        for f in &frames {
            for s in &f.signals {
                if !s.is_clutter() {
                    seen.entry(s.track_id).or_default().push(s.bbox.center().0);
                }
            }
        }
        let long_track = seen
            .values()
            .find(|xs| xs.len() > 10)
            .expect("a long track");
        let dx = long_track.last().unwrap() - long_track.first().unwrap();
        assert!(dx.abs() > 50.0, "vehicle should traverse: {dx}");
    }

    #[test]
    fn tracks_are_contiguous_in_ground_truth() {
        // GT tracks never flicker — only the detector flickers.
        let mut w = world(3);
        let frames = w.steps(200);
        let mut first_last: std::collections::HashMap<u64, (u64, u64, u64)> = Default::default();
        for f in &frames {
            for s in &f.signals {
                if s.is_clutter() {
                    continue;
                }
                let e = first_last
                    .entry(s.track_id)
                    .or_insert((f.index, f.index, 0));
                e.1 = f.index;
                e.2 += 1;
            }
        }
        for (track, (first, last, count)) in first_last {
            assert_eq!(last - first + 1, count, "gt track {track} has gaps");
        }
    }

    #[test]
    fn clutter_patches_are_persistent() {
        let mut w = world(4);
        let frames = w.steps(10);
        for f in &frames {
            let clutter = f.signals.iter().filter(|s| s.is_clutter()).count();
            assert_eq!(clutter, 6);
        }
    }

    #[test]
    fn gt_boxes_exclude_clutter() {
        let mut w = world(5);
        let frames = w.steps(100);
        for f in &frames {
            assert_eq!(
                f.gt_boxes().len(),
                f.signals.iter().filter(|s| !s.is_clutter()).count()
            );
            for g in f.gt_boxes() {
                assert!(g.class < NUM_CLASSES);
            }
        }
    }

    #[test]
    fn boxes_lie_mostly_within_frame() {
        let mut w = world(6);
        for f in w.steps(200) {
            for s in f.signals.iter().filter(|s| !s.is_clutter()) {
                let (cx, cy) = s.bbox.center();
                assert!(cy > 0.0 && cy < 720.0, "cy {cy}");
                assert!(cx > -200.0 && cx < 1480.0, "cx {cx}");
            }
        }
    }

    #[test]
    fn signal_for_track_lookup() {
        let mut w = world(7);
        let frames = w.steps(200);
        let f = frames
            .iter()
            .find(|f| f.signals.iter().any(|s| !s.is_clutter()))
            .expect("some traffic");
        let s = f.signals.iter().find(|s| !s.is_clutter()).unwrap();
        assert_eq!(f.signal_for_track(s.track_id).unwrap().track_id, s.track_id);
        assert!(f.signal_for_track(123_456_789).is_none());
    }

    #[test]
    #[should_panic(expected = "lane")]
    fn zero_lanes_rejected() {
        let cfg = TrafficConfig {
            lanes: 0,
            ..TrafficConfig::night_street()
        };
        TrafficWorld::new(cfg, 1);
    }
}
