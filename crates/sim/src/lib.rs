//! Simulated worlds and sensors for reproducing the paper's evaluation.
//!
//! The paper evaluates OMG on four real-world workloads — TV news, video
//! analytics (`night-street`), autonomous vehicles (NuScenes), and ECG
//! classification (CINC17) — using proprietary footage, large public
//! datasets, and GPU-trained models. None of those artifacts are available
//! here, so this crate provides the *closest synthetic equivalents that
//! exercise the same code paths* (see `DESIGN.md` §2 for the substitution
//! table):
//!
//! * [`traffic`] — a kinematic night-street traffic scene generator with
//!   ground-truth tracks, occlusion, and night-time contrast.
//! * [`detector`] — [`detector::SimDetector`], a *genuinely trainable*
//!   object detector whose detection, classification, and
//!   duplicate-suppression behaviour are logistic models over object
//!   appearance features. Pretrained on a "still-image daytime" domain and
//!   deployed on night video, it exhibits exactly the systematic error
//!   classes the paper reports: flicker, multibox duplicates, systematic
//!   misclassification, and **high-confidence errors**.
//! * [`av`] — a 3D autonomous-vehicle world sampled at 2 Hz with a
//!   LIDAR-like 3D detector and a camera pipeline (projection via
//!   `omg-geom`), for the `agree` assertion.
//! * [`ecg`] — a hidden-Markov rhythm process emitting class-conditional
//!   feature windows, classified by an `omg-learn` MLP, for the 30-second
//!   ECG consistency assertion.
//! * [`news`] — scene-cut TV news with hosts carrying identity, gender,
//!   and hair-colour attributes, and classifiers with transient
//!   within-scene identity swaps.
//! * [`crowd`] — a clutter-heavy crowded-scene generator with an exact,
//!   configurable box count per frame (hundreds to thousands), the
//!   workload behind the `BENCH_crowded` asymptotic benchmark.
//! * [`labeler`] — a simulated human labeling service with per-track and
//!   per-frame classification errors (no localization errors), calibrated
//!   to the paper's Appendix E.
//!
//! All randomness flows through seeded [`rand::rngs::StdRng`] instances;
//! every world is deterministic given its config and seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod av;
pub mod crowd;
pub mod detector;
pub mod ecg;
pub mod labeler;
pub mod news;
mod rng;
mod signal;
pub mod traffic;

pub use rng::derive_rng;
pub use signal::{
    AppearanceModel, DomainConditions, ObjectSignal, APP_DIM, CLUTTER_CLASS, NUM_CLASSES,
};
