//! A simulated human labeling service, for the label-validation
//! experiment (Appendix E).
//!
//! The paper obtained labels for 1,000 random `night-street` frames from
//! Scale AI and found "no localization errors, but ... 32 classification
//! errors" out of 469 boxes, of which a tracking-based consistency
//! assertion caught 12.5%. That asymmetry — only a fraction of errors are
//! caught — exists because an assertion can only see *inconsistency*: a
//! labeler who mislabels the same vehicle the same way in every frame is
//! invisible to it.
//!
//! [`HumanLabeler`] therefore models two error processes:
//!
//! * **per-track confusion** — a vehicle that genuinely looks like another
//!   class to this labeler gets the same wrong label in every frame
//!   (consistent, *uncatchable*);
//! * **per-frame slips** — attention lapses produce a wrong label in a
//!   single frame (inconsistent, *catchable*).

use omg_geom::BBox2D;
use rand::Rng;

use crate::derive_rng;
use crate::signal::CLUTTER_CLASS;
use crate::traffic::GtFrame;
use crate::NUM_CLASSES;

/// One human-labeled box.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledBox {
    /// The labeled box (humans localize well: the GT box verbatim).
    pub bbox: BBox2D,
    /// The class the labeler assigned.
    pub class: usize,
    /// The true class (simulator-side, for error accounting).
    pub true_class: usize,
    /// The underlying object's track id.
    pub track_id: u64,
}

impl LabeledBox {
    /// Whether the label is wrong.
    pub fn is_error(&self) -> bool {
        self.class != self.true_class
    }
}

/// A simulated labeling service.
#[derive(Debug, Clone, PartialEq)]
pub struct HumanLabeler {
    /// Probability that a given track is consistently mislabeled.
    pub track_confusion_rate: f64,
    /// Per-frame probability of a transient wrong label.
    pub slip_rate: f64,
    /// Seed of the labeler's error process.
    pub seed: u64,
}

impl HumanLabeler {
    /// Creates a labeler calibrated to the paper's Appendix E: roughly 7%
    /// of boxes mislabeled overall, with roughly one in eight errors being
    /// a transient (catchable) slip.
    pub fn scale_like(seed: u64) -> Self {
        Self {
            track_confusion_rate: 0.062,
            slip_rate: 0.009,
            seed,
        }
    }

    /// Labels one frame's real objects (clutter is never given a box —
    /// the paper found no spurious boxes either).
    pub fn label_frame(&self, frame: &GtFrame) -> Vec<LabeledBox> {
        let mut out = Vec::new();
        for signal in frame.signals.iter().filter(|s| !s.is_clutter()) {
            debug_assert!(signal.true_class != CLUTTER_CLASS);
            // Track-level confusion: one draw per track, stable across
            // frames.
            let mut track_rng = derive_rng(self.seed ^ 0x7AC4, signal.track_id);
            let confused = track_rng.gen::<f64>() < self.track_confusion_rate;
            let confused_class =
                (signal.true_class + track_rng.gen_range(1..NUM_CLASSES)) % NUM_CLASSES;
            // Frame-level slip: one draw per (track, frame).
            let mut slip_rng = derive_rng(
                self.seed ^ 0x511D,
                signal
                    .track_id
                    .wrapping_mul(1_000_003)
                    .wrapping_add(frame.index),
            );
            let slipped = slip_rng.gen::<f64>() < self.slip_rate;
            let slip_class = (signal.true_class + slip_rng.gen_range(1..NUM_CLASSES)) % NUM_CLASSES;

            let class = if slipped {
                slip_class
            } else if confused {
                confused_class
            } else {
                signal.true_class
            };
            out.push(LabeledBox {
                bbox: signal.bbox,
                class,
                true_class: signal.true_class,
                track_id: signal.track_id,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{TrafficConfig, TrafficWorld};

    fn frames(n: usize) -> Vec<GtFrame> {
        TrafficWorld::new(TrafficConfig::night_street(), 77).steps(n)
    }

    #[test]
    fn labels_cover_all_objects_with_exact_boxes() {
        let fs = frames(50);
        let labeler = HumanLabeler::scale_like(1);
        for f in &fs {
            let labels = labeler.label_frame(f);
            let objects: Vec<_> = f.signals.iter().filter(|s| !s.is_clutter()).collect();
            assert_eq!(labels.len(), objects.len());
            for (l, o) in labels.iter().zip(&objects) {
                assert_eq!(l.bbox, o.bbox, "no localization errors");
                assert_eq!(l.track_id, o.track_id);
            }
        }
    }

    #[test]
    fn labeling_is_deterministic() {
        let fs = frames(20);
        let labeler = HumanLabeler::scale_like(1);
        for f in &fs {
            assert_eq!(labeler.label_frame(f), labeler.label_frame(f));
        }
    }

    #[test]
    fn error_rate_is_calibrated() {
        let fs = frames(1500);
        let labeler = HumanLabeler::scale_like(3);
        let mut total = 0usize;
        let mut errors = 0usize;
        for f in &fs {
            for l in labeler.label_frame(f) {
                total += 1;
                errors += usize::from(l.is_error());
            }
        }
        let rate = errors as f64 / total as f64;
        assert!(
            (0.03..0.12).contains(&rate),
            "label error rate {rate} outside the Appendix E band (~7%)"
        );
    }

    #[test]
    fn confused_tracks_are_consistent() {
        // Every erroneous label of a confused (non-slipped) track must be
        // the same wrong class in all frames.
        let fs = frames(400);
        let labeler = HumanLabeler {
            track_confusion_rate: 0.5, // exaggerate for the test
            slip_rate: 0.0,
            seed: 9,
        };
        let mut per_track: std::collections::HashMap<u64, Vec<usize>> = Default::default();
        for f in &fs {
            for l in labeler.label_frame(f) {
                per_track.entry(l.track_id).or_default().push(l.class);
            }
        }
        for (track, classes) in per_track {
            let first = classes[0];
            assert!(
                classes.iter().all(|&c| c == first),
                "track {track} labels flip without slips"
            );
        }
    }

    #[test]
    fn slips_are_transient() {
        let fs = frames(600);
        let labeler = HumanLabeler {
            track_confusion_rate: 0.0,
            slip_rate: 0.05, // exaggerate
            seed: 4,
        };
        let mut per_track: std::collections::HashMap<u64, Vec<usize>> = Default::default();
        for f in &fs {
            for l in labeler.label_frame(f) {
                per_track.entry(l.track_id).or_default().push(l.class);
            }
        }
        // At least one long track must show a transient flip (error
        // surrounded by correct labels).
        let mut found_transient = false;
        for classes in per_track.values() {
            if classes.len() < 5 {
                continue;
            }
            for w in classes.windows(3) {
                if w[0] == w[2] && w[0] != w[1] {
                    found_transient = true;
                }
            }
        }
        assert!(found_transient, "no transient slips generated");
    }
}
