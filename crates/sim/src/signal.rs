use omg_geom::BBox2D;
use rand::Rng;

use self::rand_distr_shim::sample_normal;

/// Number of object classes the detection worlds use (car, truck, bus).
pub const NUM_CLASSES: usize = 3;

/// Pseudo-class index used for background clutter signals.
pub const CLUTTER_CLASS: usize = NUM_CLASSES;

/// Dimensionality of the appearance feature vector.
///
/// Layout: `[0..3)` class-prototype channels, `[3]` brightness,
/// `[4]` normalized size, `[5]` occlusion fraction, `[6]` normalized
/// speed, `[7]` texture/clutterness, `[8]` low-light-band gate,
/// `[9..12)` gated (low-light) prototype channels.
///
/// The gated channels give a *linear* detector head local structure: a
/// weakly lit patch activates only the low-light band, so telling dark
/// vehicles from night clutter requires training examples **from that
/// band** — bright daytime data cannot teach it. This mirrors how a CNN's
/// low-light features stay untrained when the training corpus is bright
/// still images, and it is what makes *which* frames get labeled matter
/// in the active-learning experiments.
pub const APP_DIM: usize = 12;

/// Soft membership of a patch in the low-light band: the patch must be
/// weakly activated (dark object or clutter) *and* the scene must be
/// dark. Daytime scenes (brightness ≈ 0.8) have ambient gate ≈ 0, so
/// bright pretraining data never trains the gated channels; at night the
/// band contains exactly the confusable population — dark vehicles and
/// clutter — while well-lit vehicles stay out of it.
fn dark_gate(strength: f64, ambient_brightness: f64) -> f64 {
    let strength_gate = 1.0 / (1.0 + ((strength - 0.30) / 0.05).exp());
    let ambient_gate = 1.0 / (1.0 + ((ambient_brightness - 0.45) / 0.05).exp());
    strength_gate * ambient_gate
}

/// What the detector "sees" of one object (or clutter patch) in one frame:
/// the stand-in for an image crop.
///
/// The appearance vector is the detector's only input — ground truth never
/// leaks into inference. The world keeps the true class and track id
/// alongside for evaluation and for resolving weak labels back to training
/// patches (the real-world analogue: the image pixels at a proposed box
/// always exist, even when the detector missed the object).
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectSignal {
    /// Stable identity of the underlying object (unique per world).
    pub track_id: u64,
    /// Ground-truth class (`CLUTTER_CLASS` for background clutter).
    pub true_class: usize,
    /// Ground-truth box in image coordinates.
    pub bbox: BBox2D,
    /// The appearance feature vector (length [`APP_DIM`]).
    pub appearance: Vec<f64>,
    /// Intrinsic visual quality in `(0, 1]` (darkness, distance,
    /// occlusion all lower it); exposed for difficulty analysis.
    pub quality: f64,
}

impl ObjectSignal {
    /// Whether this signal is background clutter rather than a real
    /// object.
    pub fn is_clutter(&self) -> bool {
        self.true_class == CLUTTER_CLASS
    }
}

/// Domain conditions controlling how appearances are rendered — the
/// domain-shift knob.
///
/// The pretraining domain ("MS-COCO still images": bright, clean) and the
/// deployment domain (`night-street`: dark, contrast-attenuated, with a
/// class-confusing sensor bias) differ exactly here, which is what makes
/// the pretrained detector fail systematically on deployment data — the
/// paper's core premise ("domain shift between training and deployment
/// data", §1).
#[derive(Debug, Clone, PartialEq)]
pub struct DomainConditions {
    /// Multiplier on class-prototype strength (day ≈ 1, night ≈ 0.55).
    pub contrast: f64,
    /// Ambient brightness feature value (day ≈ 0.8, night ≈ 0.25).
    pub brightness: f64,
    /// Additive bias on the prototype channels. At night the simulated
    /// sensor bleeds energy into the truck channel, producing
    /// *high-confidence* car→truck misclassifications.
    pub channel_bias: [f64; NUM_CLASSES],
    /// Std-dev of per-frame appearance noise (higher at night).
    pub noise: f64,
}

impl DomainConditions {
    /// The clean daytime/still-image pretraining domain.
    pub fn day() -> Self {
        Self {
            contrast: 1.0,
            brightness: 0.8,
            channel_bias: [0.0; NUM_CLASSES],
            noise: 0.10,
        }
    }

    /// The night-street deployment domain.
    pub fn night() -> Self {
        Self {
            contrast: 0.75,
            brightness: 0.25,
            channel_bias: [0.0, 0.26, 0.0],
            noise: 0.15,
        }
    }
}

/// Renders appearance vectors for objects and clutter under given domain
/// conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct AppearanceModel {
    conditions: DomainConditions,
}

impl AppearanceModel {
    /// Creates a model for the given conditions.
    pub fn new(conditions: DomainConditions) -> Self {
        Self { conditions }
    }

    /// The conditions in effect.
    pub fn conditions(&self) -> &DomainConditions {
        &self.conditions
    }

    /// Renders the appearance of a real object.
    ///
    /// * `class` — true class in `0..NUM_CLASSES`;
    /// * `quality` — intrinsic visibility in `(0, 1]`;
    /// * `size` — normalized box size in `[0, 1]`;
    /// * `occlusion` — occluded fraction in `[0, 1]`;
    /// * `speed` — normalized speed in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= NUM_CLASSES`.
    pub fn object_appearance<R: Rng>(
        &self,
        class: usize,
        quality: f64,
        size: f64,
        occlusion: f64,
        speed: f64,
        rng: &mut R,
    ) -> Vec<f64> {
        assert!(class < NUM_CLASSES, "class {class} out of range");
        let c = &self.conditions;
        // Quality bites superlinearly: well-lit objects stay easy at
        // night, dark ones fall off a cliff — failures concentrate on a
        // subpopulation instead of afflicting every object equally.
        let strength = c.contrast * quality.powf(1.6) * (1.0 - 0.7 * occlusion);
        let mut app = vec![0.0; APP_DIM];
        // PANIC: fixed feature layout — app has APP_DIM (12) slots and
        // every subscript below is a constant < 9 or k < NUM_CLASSES (3).
        for (k, bias) in c.channel_bias.iter().enumerate() {
            let proto = if k == class { strength } else { 0.0 };
            app[k] = proto + bias + sample_normal(rng) * c.noise;
        }
        app[3] = c.brightness + sample_normal(rng) * 0.15;
        app[4] = size;
        app[5] = occlusion;
        app[6] = speed;
        app[7] = 0.25 + sample_normal(rng).abs() * 0.12;
        let gate = dark_gate(strength, c.brightness);
        // PANIC: slots 8 and 9 + k with k < NUM_CLASSES stay below
        // APP_DIM = 9 + NUM_CLASSES.
        app[8] = gate;
        for k in 0..NUM_CLASSES {
            app[9 + k] = gate * app[k];
        }
        app
    }

    /// Renders the appearance of a background clutter patch (reflections,
    /// shadows, signage): weak, classless prototype activation and high
    /// texture. At night, clutter gets the same channel bias as objects,
    /// which is what lets it fool a domain-shifted detector.
    pub fn clutter_appearance<R: Rng>(&self, size: f64, rng: &mut R) -> Vec<f64> {
        let c = &self.conditions;
        let mut app = vec![0.0; APP_DIM];
        let base = rng.gen_range(0.0..0.10);
        // The night channel bias couples into clutter at a fraction of its
        // object strength: reflective background picks up some of the
        // sensor's spectral bias, but much less than metal vehicle bodies.
        // PANIC: fixed feature layout — constant slots < 9 and
        // k < NUM_CLASSES all stay below APP_DIM (12).
        for (k, bias) in c.channel_bias.iter().enumerate() {
            app[k] = base + bias * 0.15 + sample_normal(rng) * c.noise;
        }
        app[3] = c.brightness + sample_normal(rng) * 0.15;
        app[4] = size;
        // Reflections and shadows have apparent occlusion and motion, so
        // these dims overlap with real objects — the prototype channels
        // must carry the object/clutter separation.
        // PANIC: constant slots 5..=7 stay below APP_DIM.
        app[5] = rng.gen_range(0.0..0.25);
        app[6] = rng.gen_range(0.0..0.6);
        app[7] = 0.45 + sample_normal(rng).abs() * 0.18;
        // At night, weakly lit clutter lives in the low-light band, where
        // it is confusable with dark vehicles; by day the band stays off.
        // PANIC: slots 8 and 9 + k with k < NUM_CLASSES stay below
        // APP_DIM = 9 + NUM_CLASSES.
        let gate = dark_gate(base, c.brightness);
        app[8] = gate;
        for k in 0..NUM_CLASSES {
            app[9 + k] = gate * app[k];
        }
        app
    }
}

/// A tiny normal sampler so the crate needs no distribution dependency.
mod rand_distr_shim {
    use rand::Rng;

    /// Standard normal via Box–Muller.
    pub fn sample_normal<R: Rng>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

pub(crate) use self::rand_distr_shim::sample_normal as normal;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derive_rng;

    #[test]
    fn object_appearance_activates_own_channel() {
        let model = AppearanceModel::new(DomainConditions::day());
        let mut rng = derive_rng(1, 0);
        let mut mean = vec![0.0; NUM_CLASSES];
        for _ in 0..200 {
            let app = model.object_appearance(1, 0.9, 0.3, 0.0, 0.2, &mut rng);
            for k in 0..NUM_CLASSES {
                mean[k] += app[k] / 200.0;
            }
        }
        assert!(mean[1] > 0.6, "own channel should be strong: {mean:?}");
        assert!(mean[0].abs() < 0.1 && mean[2].abs() < 0.1);
    }

    #[test]
    fn night_attenuates_and_biases() {
        let day = AppearanceModel::new(DomainConditions::day());
        let night = AppearanceModel::new(DomainConditions::night());
        let mut rng = derive_rng(2, 0);
        let mut day_own = 0.0;
        let mut night_own = 0.0;
        let mut night_truck = 0.0;
        for _ in 0..300 {
            day_own += day.object_appearance(0, 0.8, 0.3, 0.0, 0.2, &mut rng)[0] / 300.0;
            let app = night.object_appearance(0, 0.8, 0.3, 0.0, 0.2, &mut rng);
            night_own += app[0] / 300.0;
            night_truck += app[1] / 300.0;
        }
        assert!(night_own < day_own, "night contrast must attenuate");
        assert!(
            night_truck > 0.15,
            "night bias should bleed into the truck channel: {night_truck}"
        );
    }

    #[test]
    fn clutter_has_high_texture_and_weak_prototypes() {
        let model = AppearanceModel::new(DomainConditions::day());
        let mut rng = derive_rng(3, 0);
        let mut texture = 0.0;
        let mut proto = 0.0;
        for _ in 0..200 {
            let app = model.clutter_appearance(0.1, &mut rng);
            texture += app[7] / 200.0;
            proto += app[0].max(app[1]).max(app[2]) / 200.0;
        }
        assert!(texture > 0.4);
        assert!(proto < 0.35);
    }

    #[test]
    fn occlusion_weakens_prototype() {
        let model = AppearanceModel::new(DomainConditions::day());
        let mut rng = derive_rng(4, 0);
        let mut clear = 0.0;
        let mut occluded = 0.0;
        for _ in 0..200 {
            clear += model.object_appearance(2, 0.9, 0.3, 0.0, 0.2, &mut rng)[2] / 200.0;
            occluded += model.object_appearance(2, 0.9, 0.3, 0.8, 0.2, &mut rng)[2] / 200.0;
        }
        assert!(occluded < clear * 0.7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn clutter_class_rejected_as_object() {
        let model = AppearanceModel::new(DomainConditions::day());
        let mut rng = derive_rng(5, 0);
        model.object_appearance(CLUTTER_CLASS, 0.9, 0.3, 0.0, 0.2, &mut rng);
    }

    #[test]
    fn signal_clutter_flag() {
        let s = ObjectSignal {
            track_id: 0,
            true_class: CLUTTER_CLASS,
            bbox: BBox2D::new(0.0, 0.0, 1.0, 1.0).unwrap(),
            appearance: vec![0.0; APP_DIM],
            quality: 0.5,
        };
        assert!(s.is_clutter());
    }

    #[test]
    fn normal_sampler_is_roughly_standard() {
        let mut rng = derive_rng(6, 0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| super::normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
