use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives an independent, reproducible RNG from a base seed and a stream
/// identifier.
///
/// Worlds use one stream per concern (spawning, detection noise, labeling
/// errors, ...) so that, e.g., re-running detection with a retrained model
/// consumes the same underlying random draws — a retrained model's
/// improvement is then monotone in its probabilities rather than an
/// artifact of RNG realignment.
pub fn derive_rng(seed: u64, stream: u64) -> StdRng {
    // SplitMix64 over (seed, stream) gives well-separated seeds.
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed_and_stream() {
        let a: f64 = derive_rng(7, 1).gen();
        let b: f64 = derive_rng(7, 1).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn streams_are_independent() {
        let a: f64 = derive_rng(7, 1).gen();
        let b: f64 = derive_rng(7, 2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn seeds_are_independent() {
        let a: f64 = derive_rng(7, 1).gen();
        let b: f64 = derive_rng(8, 1).gen();
        assert_ne!(a, b);
    }
}
