//! The type-erased runtime face of a scenario's monitor service, plus
//! the cross-scenario service registry.
//!
//! Mirrors [`omg_scenario::DynScenario`]: binding a [`Scenario`] + model
//! into a [`ServiceHarness`] erases the associated types behind
//! [`DynService`], so the conformance suite, the soak benchmark, and any
//! multi-tenant driver iterate heterogeneous services behind one object
//! — a new scenario is service-tested by construction. [`ServicePool`]
//! is the registry itself: a [`SyncMap`] from scenario name to erased
//! service, so the first tenant to touch a scenario pays the
//! construction and everyone after shares the `Arc`.

use std::sync::{Arc, OnceLock};

use omg_core::runtime::ThreadPool;
use omg_scenario::{stream_score_scenario, Scenario, Scores};

use crate::{IngestError, MonitorService, ServiceConfig, SessionId, SyncMap};

/// The type-erased face of one scenario's [`MonitorService`], driving it
/// through the scenario's **precomputed model output stream**: callers
/// ingest stream *positions* and the harness feeds the item at that
/// position, so tests and benchmarks replay any slice of the deployment
/// stream into any session.
pub trait DynService: Send + Sync {
    /// The scenario's short stable identifier.
    fn name(&self) -> &'static str;

    /// Number of positions in the precomputed item stream.
    fn stream_len(&self) -> usize;

    /// Items of temporal context on each side of a window's center.
    fn window_half(&self) -> usize;

    /// Assertion names, in severity-vector dimension order.
    fn assertion_names(&self) -> Vec<String>;

    /// Opens a session explicitly.
    fn open(&self, session: SessionId);

    /// Offers stream position `position`'s item to a session.
    ///
    /// # Errors
    ///
    /// [`IngestError::QueueFull`] when the session's queue is at
    /// capacity (the item is not accepted; retry after a drain).
    fn try_ingest_position(&self, session: SessionId, position: usize) -> Result<(), IngestError>;

    /// Drains all sessions across the pool's workers; returns windows
    /// scored.
    fn drain(&self, pool: &ThreadPool) -> usize;

    /// Takes a session's undelivered outputs (see
    /// [`MonitorService::poll`]).
    fn poll(&self, session: SessionId) -> Option<Scores>;

    /// Finishes a session, flushing its tail windows; returns its final
    /// undelivered outputs.
    fn finish(&self, session: SessionId) -> Option<Scores>;

    /// The sequential single-stream reference for `len` positions
    /// starting at `start`: what a session fed exactly those positions
    /// must produce **bit-for-bit**.
    fn sequential_reference(&self, start: usize, len: usize) -> Scores;

    /// Number of open sessions.
    fn sessions(&self) -> usize;

    /// Items queued (accepted, unscored) across all sessions.
    fn queued(&self) -> usize;

    /// Database rows resident across all sessions.
    fn resident_records(&self) -> usize;

    /// Items accepted over the service's lifetime.
    fn accepted(&self) -> usize;

    /// Windows scored over the service's lifetime.
    fn scored(&self) -> usize;

    /// Evicts idle sessions (no-op unless configured); returns evicted
    /// ids.
    fn evict_idle(&self) -> Vec<SessionId>;
}

/// Binds a [`Scenario`] + pretrained model to a [`MonitorService`],
/// erasing the associated types behind [`DynService`].
pub struct ServiceHarness<Sc: Scenario> {
    service: MonitorService<Sc>,
    model: Sc::Model,
    /// The model's pass over the pool, computed on first use and shared
    /// by every session and the sequential reference.
    items: OnceLock<Vec<Sc::Item>>,
}

impl<Sc: Scenario + 'static> ServiceHarness<Sc> {
    /// Binds scenario, model, and config into a ready service.
    pub fn new(scenario: Sc, model: Sc::Model, config: ServiceConfig) -> Self {
        Self {
            service: MonitorService::new(scenario, config),
            model,
            items: OnceLock::new(),
        }
    }

    /// Boxes the harness as a registry entry.
    pub fn boxed(scenario: Sc, model: Sc::Model, config: ServiceConfig) -> Box<dyn DynService> {
        Box::new(Self::new(scenario, model, config))
    }

    /// The underlying typed service.
    pub fn service(&self) -> &MonitorService<Sc> {
        &self.service
    }

    fn items(&self) -> &[Sc::Item] {
        self.items
            .get_or_init(|| self.service.scenario().run_model(&self.model))
    }
}

impl<Sc: Scenario + 'static> DynService for ServiceHarness<Sc> {
    fn name(&self) -> &'static str {
        self.service.scenario().name()
    }

    fn stream_len(&self) -> usize {
        self.items().len()
    }

    fn window_half(&self) -> usize {
        self.service.scenario().window_half()
    }

    fn assertion_names(&self) -> Vec<String> {
        self.service
            .assertion_set()
            .names()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    fn open(&self, session: SessionId) {
        self.service.open(session);
    }

    fn try_ingest_position(&self, session: SessionId, position: usize) -> Result<(), IngestError> {
        let item = self.items()[position].clone();
        self.service.try_ingest(session, item)
    }

    fn drain(&self, pool: &ThreadPool) -> usize {
        self.service.drain(pool)
    }

    fn poll(&self, session: SessionId) -> Option<Scores> {
        self.service.poll(session)
    }

    fn finish(&self, session: SessionId) -> Option<Scores> {
        self.service.finish(session).map(|report| report.scores)
    }

    fn sequential_reference(&self, start: usize, len: usize) -> Scores {
        let items = &self.items()[start..start + len];
        stream_score_scenario(
            self.service.scenario(),
            self.service.assertion_set(),
            self.service.preparer(),
            items,
            &ThreadPool::sequential(),
        )
    }

    fn sessions(&self) -> usize {
        self.service.sessions()
    }

    fn queued(&self) -> usize {
        self.service.queued()
    }

    fn resident_records(&self) -> usize {
        self.service.resident_records()
    }

    fn accepted(&self) -> usize {
        self.service.accepted()
    }

    fn scored(&self) -> usize {
        self.service.scored()
    }

    fn evict_idle(&self) -> Vec<SessionId> {
        self.service.evict_idle()
    }
}

/// The cross-scenario service registry: scenario name → shared erased
/// service. The first caller to touch a name constructs the service
/// (assertion set, preparer, model bindings); every later caller — any
/// thread, any tenant — gets the same `Arc` for the cost of a read
/// lock. This is the SyncMap read-then-write cache applied at the
/// coarsest grain.
#[derive(Default)]
pub struct ServicePool {
    services: SyncMap<String, dyn DynService>,
}

impl ServicePool {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the service registered under `name`, constructing it
    /// with `build` on first touch (exactly once, even under races).
    pub fn get_or_build(
        &self,
        name: &str,
        build: impl FnOnce() -> Box<dyn DynService>,
    ) -> Arc<dyn DynService> {
        self.services
            .get_or_init(name.to_string(), || Arc::from(build()))
    }

    /// The service under `name`, if already built.
    pub fn get(&self, name: &str) -> Option<Arc<dyn DynService>> {
        self.services.get(name)
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }
}
