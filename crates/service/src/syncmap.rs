//! A concurrent `Arc`-cached map with read-then-write get-or-insert.
//!
//! The service's shared registries — scenario resources shared by every
//! session, and the session-shard table itself — all want the same
//! access pattern: almost every lookup hits an existing entry, and the
//! rare miss must construct the entry **exactly once** even when many
//! threads race for the same key. [`SyncMap`] provides that with plain
//! `std` primitives: a [`RwLock`] around a [`BTreeMap`] of [`Arc`]s.
//! Reads take the shared lock and clone the `Arc` (cheap, concurrent);
//! a miss upgrades to the exclusive lock and re-checks under it, so two
//! racers agree on one winner and the loser's constructor never runs.

use std::borrow::Borrow;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// A concurrent map from ordered keys to shared values.
///
/// Values live behind [`Arc`], so a returned handle stays valid after
/// the entry is removed — readers never block on a removal, and a
/// session being evicted cannot invalidate a worker's handle mid-use.
///
/// `V: ?Sized` so the map can hold trait objects
/// (`SyncMap<String, dyn Service>`-style registries).
pub struct SyncMap<K, V: ?Sized> {
    map: RwLock<BTreeMap<K, Arc<V>>>,
}

impl<K: Ord, V: ?Sized> Default for SyncMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V: ?Sized> SyncMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self {
            map: RwLock::new(BTreeMap::new()),
        }
    }

    /// Returns the value under `key`, constructing and inserting it with
    /// `create` on first touch.
    ///
    /// The fast path takes only the shared (read) lock. On a miss the
    /// exclusive lock is taken and the map re-checked, so concurrent
    /// callers racing on the same key observe **the same** `Arc` and
    /// `create` runs exactly once per key — the read-then-write cache
    /// idiom (SNIPPETS.md §3).
    pub fn get_or_init(&self, key: K, create: impl FnOnce() -> Arc<V>) -> Arc<V> {
        // PANIC: a poisoned RwLock means a writer panicked mid-update;
        // the map may be half-mutated, so propagating is the only
        // sound option (same argument for every lock in this file).
        if let Some(v) = self.map.read().expect("syncmap poisoned").get(&key) {
            return Arc::clone(v);
        }
        let mut map = self.map.write().expect("syncmap poisoned");
        Arc::clone(map.entry(key).or_insert_with(create))
    }

    /// Returns the value under `key`, if present, without constructing.
    pub fn get<Q>(&self, key: &Q) -> Option<Arc<V>>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        // PANIC: poisoning propagation; see get_or_init.
        self.map
            .read()
            .expect("syncmap poisoned")
            .get(key)
            .map(Arc::clone)
    }

    /// Removes and returns the value under `key`. Outstanding handles
    /// remain valid; only the map entry goes away.
    pub fn remove<Q>(&self, key: &Q) -> Option<Arc<V>>
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        // PANIC: poisoning propagation; see get_or_init.
        self.map.write().expect("syncmap poisoned").remove(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        // PANIC: poisoning propagation; see get_or_init.
        self.map.read().expect("syncmap poisoned").len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Ord + Clone, V: ?Sized> SyncMap<K, V> {
    /// A point-in-time snapshot of all entries, in key order. The
    /// snapshot holds `Arc` handles, so it stays usable while other
    /// threads insert or remove concurrently.
    pub fn entries(&self) -> Vec<(K, Arc<V>)> {
        // PANIC: poisoning propagation; see get_or_init.
        self.map
            .read()
            .expect("syncmap poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Keeps only the entries for which `keep` returns `true`, returning
    /// the removed entries (in key order). The whole sweep runs under
    /// the exclusive lock, so no insert interleaves with the decision.
    pub fn retain(&self, mut keep: impl FnMut(&K, &Arc<V>) -> bool) -> Vec<(K, Arc<V>)> {
        // PANIC: poisoning propagation; see get_or_init.
        let mut map = self.map.write().expect("syncmap poisoned");
        let doomed: Vec<K> = map
            .iter()
            .filter(|(k, v)| !keep(k, v))
            .map(|(k, _)| k.clone())
            .collect();
        doomed
            .into_iter()
            .map(|k| {
                // PANIC: doomed keys were read under this same
                // exclusive lock, so they are still present.
                let v = map.remove(&k).expect("doomed key present under lock");
                (k, v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn get_or_init_constructs_once_and_caches() {
        let map: SyncMap<u32, String> = SyncMap::new();
        assert!(map.is_empty());
        let built = AtomicUsize::new(0);
        let a = map.get_or_init(7, || {
            built.fetch_add(1, Ordering::SeqCst);
            Arc::new("seven".to_string())
        });
        let b = map.get_or_init(7, || {
            built.fetch_add(1, Ordering::SeqCst);
            Arc::new("never".to_string())
        });
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(built.load(Ordering::SeqCst), 1);
        assert_eq!(map.len(), 1);
        assert_eq!(map.get(&7).as_deref(), Some(&"seven".to_string()));
        assert!(map.get(&8).is_none());
    }

    /// The satellite stress test: 8 threads racing get-or-insert on the
    /// **same** key observe exactly one constructed value (every handle
    /// `Arc::ptr_eq` to every other) and the constructor runs once.
    #[test]
    fn racing_get_or_init_on_one_key_constructs_exactly_once() {
        const THREADS: usize = 8;
        for round in 0..50u32 {
            let map: SyncMap<u32, u32> = SyncMap::new();
            let built = AtomicUsize::new(0);
            let barrier = Barrier::new(THREADS);
            let handles: Vec<Arc<u32>> = std::thread::scope(|scope| {
                let workers: Vec<_> = (0..THREADS)
                    .map(|_| {
                        scope.spawn(|| {
                            barrier.wait();
                            map.get_or_init(round, || {
                                built.fetch_add(1, Ordering::SeqCst);
                                Arc::new(round)
                            })
                        })
                    })
                    .collect();
                workers.into_iter().map(|w| w.join().unwrap()).collect()
            });
            assert_eq!(
                built.load(Ordering::SeqCst),
                1,
                "round {round}: one construction"
            );
            assert!(
                handles.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])),
                "round {round}: all threads share one Arc"
            );
            assert_eq!(map.len(), 1);
        }
    }

    /// The other half of the satellite: 8 threads inserting **distinct**
    /// keys concurrently lose none of them.
    #[test]
    fn racing_inserts_on_distinct_keys_lose_nothing() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 25;
        let map: SyncMap<usize, usize> = SyncMap::new();
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let map = &map;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    for i in 0..PER_THREAD {
                        let key = t * PER_THREAD + i;
                        map.get_or_init(key, || Arc::new(key * 10));
                    }
                });
            }
        });
        assert_eq!(map.len(), THREADS * PER_THREAD, "no insert lost");
        for key in 0..THREADS * PER_THREAD {
            assert_eq!(*map.get(&key).expect("present"), key * 10);
        }
    }

    #[test]
    fn remove_keeps_outstanding_handles_valid() {
        let map: SyncMap<u8, Vec<u8>> = SyncMap::new();
        let handle = map.get_or_init(1, || Arc::new(vec![1, 2, 3]));
        let removed = map.remove(&1).expect("entry present");
        assert!(Arc::ptr_eq(&handle, &removed));
        assert!(map.get(&1).is_none());
        assert_eq!(*handle, vec![1, 2, 3], "handle outlives the entry");
        assert!(map.remove(&1).is_none());
    }

    #[test]
    fn entries_snapshot_and_retain_sweep() {
        let map: SyncMap<u32, u32> = SyncMap::new();
        for k in 0..6 {
            map.get_or_init(k, || Arc::new(k * k));
        }
        let snapshot = map.entries();
        assert_eq!(snapshot.len(), 6);
        assert!(snapshot.windows(2).all(|w| w[0].0 < w[1].0), "key order");
        let evicted = map.retain(|&k, _| k % 2 == 0);
        assert_eq!(
            evicted.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![1, 3, 5]
        );
        assert_eq!(map.len(), 3);
        // The pre-sweep snapshot still resolves.
        assert!(snapshot.iter().all(|(k, v)| **v == k * k));
    }

    #[test]
    fn holds_trait_objects() {
        let map: SyncMap<&'static str, dyn Fn() -> usize + Send + Sync> = SyncMap::new();
        let f = map.get_or_init("answer", || Arc::new(|| 42usize));
        assert_eq!(f(), 42);
    }
}
