//! The **multi-tenant monitoring service**: the production shape of
//! model-assertion monitoring.
//!
//! The paper argues assertions are cheap enough to run "over every model
//! invocation" in deployment (§7); a real deployment is not one stream
//! but thousands of concurrent sessions — cameras, vehicles, patients —
//! sharing one scenario's assertion sets and models. This crate layers
//! that shape over the streaming engine:
//!
//! * [`SyncMap`] — the concurrent `Arc`-cached map (read-then-write on
//!   `RwLock<BTreeMap>`) behind every shared registry here: construct
//!   once under race, share forever.
//! * [`MonitorService`] — session-keyed monitor shards over one
//!   scenario. Sessions own private sliders, bounded ingest queues
//!   ([`MonitorService::try_ingest`] pushes back with
//!   [`IngestError::QueueFull`] instead of growing), and
//!   retention-capped databases; drains divide work at **session**
//!   granularity across the pool.
//! * [`DynService`] / [`ServiceHarness`] — the type-erased face the
//!   conformance suite and the `exp service` soak benchmark drive, and
//!   [`ServicePool`], the name-keyed registry sharing whole services.
//!
//! The load-bearing contract: a session's output sequence is
//! **bit-for-bit** the sequential [`omg_scenario::stream_score_scenario`]
//! run of the same items, no matter how sessions interleave or how many
//! workers drain them — enforced for every registered scenario at 1/2/8
//! workers by the registry-driven conformance suite
//! (`tests/tests/service_conformance.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod harness;
mod service;
mod syncmap;

pub use harness::{DynService, ServiceHarness, ServicePool};
pub use service::{IngestError, MonitorService, ServiceConfig, SessionId, SessionReport};
pub use syncmap::SyncMap;

// Re-exported so service callers can name the runtime and the score
// types without extra imports.
pub use omg_scenario::{Scores, ThreadPool};

#[cfg(test)]
mod tests {
    use super::*;
    use omg_core::stream::{FnPrepare, Prepare};
    use omg_core::{AssertionSet, FnAssertion, Severity};
    use omg_scenario::Scenario;
    use rand::rngs::StdRng;
    use std::sync::Arc;

    /// A deterministic toy scenario: items are small integers, samples
    /// are the window's items, the shared preparation is the window
    /// sum.
    #[derive(Clone)]
    struct Toy {
        n: usize,
    }

    impl Scenario for Toy {
        type Item = i64;
        type Sample = Vec<i64>;
        type Prep = i64;
        type Model = ();
        type Labels = ();

        fn name(&self) -> &'static str {
            "toy-service"
        }

        fn window_half(&self) -> usize {
            1
        }

        fn pool_len(&self) -> usize {
            self.n
        }

        fn pretrained_model(&self, _seed: u64) {}

        fn run_model(&self, _model: &()) -> Vec<i64> {
            (0..self.n as i64).map(|i| (i * 37) % 23 - 11).collect()
        }

        fn assertion_set(&self) -> AssertionSet<Vec<i64>> {
            let mut set = AssertionSet::new();
            set.add_fn("negative-sum", |xs: &Vec<i64>| {
                Severity::from_bool(xs.iter().sum::<i64>() < 0)
            });
            set.add_fn("large-sum", |xs: &Vec<i64>| {
                Severity::new(xs.iter().sum::<i64>().unsigned_abs() as f64 / 8.0)
            });
            set
        }

        fn prepared_set(&self) -> AssertionSet<Vec<i64>, i64> {
            let mut set = AssertionSet::new();
            set.add_prepared(
                FnAssertion::new("negative-sum", |xs: &Vec<i64>| {
                    Severity::from_bool(xs.iter().sum::<i64>() < 0)
                }),
                |_, &sum: &i64| Severity::from_bool(sum < 0),
            );
            set.add_prepared(
                FnAssertion::new("large-sum", |xs: &Vec<i64>| {
                    Severity::new(xs.iter().sum::<i64>().unsigned_abs() as f64 / 8.0)
                }),
                |_, &sum: &i64| Severity::new(sum.unsigned_abs() as f64 / 8.0),
            );
            set
        }

        fn preparer(&self) -> Box<dyn Prepare<Vec<i64>, Prepared = i64>> {
            Box::new(FnPrepare::new(|xs: &Vec<i64>| xs.iter().sum::<i64>()))
        }

        fn make_sample(&self, items: &[i64], _center: usize) -> Vec<i64> {
            items.to_vec()
        }

        fn uncertainty(&self, item: &i64) -> f64 {
            (*item as f64) / 10.0
        }

        fn trains(&self) -> bool {
            false
        }

        fn initial_labels(&self) {}

        fn label_into(&self, _labels: &mut (), _pool_index: usize) {}

        fn train(&self, _model: &mut (), _labels: &(), _rng: &mut StdRng) {}

        fn evaluate(&self, _model: &()) -> f64 {
            0.0
        }
    }

    fn harness(n: usize, config: ServiceConfig) -> Box<dyn DynService> {
        ServiceHarness::boxed(Toy { n }, (), config)
    }

    #[test]
    fn interleaved_sessions_match_independent_sequential_runs() {
        for workers in [1, 2, 8] {
            let pool = ThreadPool::exact(workers);
            let svc = harness(40, ServiceConfig::default().with_retention(3));
            // Three sessions over different slices of the stream,
            // ingested round-robin with drains interleaved.
            let slices = [(0usize, 40usize), (0, 17), (11, 23)];
            let mut cursors = [0usize; 3];
            let mut delivered: Vec<Scores> = vec![(omg_core::SeverityMatrix::new(), Vec::new()); 3];
            loop {
                let mut progressed = false;
                for (s, &(start, len)) in slices.iter().enumerate() {
                    for _ in 0..4 {
                        if cursors[s] < len {
                            svc.try_ingest_position(SessionId(s as u64), start + cursors[s])
                                .expect("default capacity is ample");
                            cursors[s] += 1;
                            progressed = true;
                        }
                    }
                }
                svc.drain(&pool);
                // Poll mid-stream: delivery must compose.
                for (s, out) in delivered.iter_mut().enumerate() {
                    let (sev, unc) = svc.poll(SessionId(s as u64)).expect("open session");
                    out.0.append(&sev);
                    out.1.extend(unc);
                }
                if !progressed {
                    break;
                }
            }
            for (s, &(start, len)) in slices.iter().enumerate() {
                let (sev, unc) = svc.finish(SessionId(s as u64)).expect("open session");
                delivered[s].0.append(&sev);
                delivered[s].1.extend(unc);
                let want = svc.sequential_reference(start, len);
                assert_eq!(
                    delivered[s], want,
                    "session {s} diverged from its sequential run (workers={workers})"
                );
            }
            assert_eq!(svc.sessions(), 0, "finish tears sessions down");
        }
    }

    /// The backpressure satellite: a full bounded queue rejects with
    /// `QueueFull` without dropping already-accepted items, and drains
    /// to empty after the shard resumes.
    #[test]
    fn full_queue_rejects_without_dropping_accepted_items() {
        let svc = harness(20, ServiceConfig::default().with_queue_capacity(3));
        let session = SessionId(9);
        for position in 0..3 {
            svc.try_ingest_position(session, position)
                .expect("under capacity");
        }
        assert_eq!(
            svc.try_ingest_position(session, 3),
            Err(IngestError::QueueFull {
                session,
                capacity: 3
            })
        );
        assert_eq!(svc.queued(), 3, "rejection dropped nothing");
        assert_eq!(svc.accepted(), 3);
        // Resume: a drain frees the queue, the rejected item goes
        // through on retry, and everything scores in order.
        svc.drain(&ThreadPool::exact(2));
        assert_eq!(svc.queued(), 0, "drained to empty");
        for position in 3..6 {
            svc.try_ingest_position(session, position)
                .expect("freed capacity");
        }
        svc.drain(&ThreadPool::exact(2));
        let got = svc.finish(session).expect("open session");
        assert_eq!(got, svc.sequential_reference(0, 6), "no gap, no reorder");
    }

    /// The flat-memory contract: with retention configured, resident
    /// database rows stay bounded no matter how many items flow
    /// through.
    #[test]
    fn retention_keeps_resident_records_flat() {
        let keep = 4;
        let svc = harness(
            200,
            ServiceConfig::default()
                .with_queue_capacity(16)
                .with_retention(keep),
        );
        let pool = ThreadPool::exact(2);
        let assertions = svc.assertion_names().len();
        let sessions = 3u64;
        let mut max_resident = 0usize;
        for position in 0..200 {
            for s in 0..sessions {
                while svc.try_ingest_position(SessionId(s), position).is_err() {
                    svc.drain(&pool);
                }
            }
            if position % 8 == 0 {
                svc.drain(&pool);
                max_resident = max_resident.max(svc.resident_records());
                for s in 0..sessions {
                    let _ = svc.poll(SessionId(s));
                }
            }
        }
        let bound = sessions as usize * keep * assertions;
        assert!(
            max_resident <= bound,
            "resident rows {max_resident} exceed the flat bound {bound}"
        );
        assert_eq!(svc.accepted(), 600);
    }

    #[test]
    fn idle_sessions_are_evicted_but_busy_ones_survive() {
        let svc = harness(
            30,
            ServiceConfig::default()
                .with_queue_capacity(8)
                .with_idle_eviction(2),
        );
        let pool = ThreadPool::sequential();
        let idle = SessionId(1);
        let busy = SessionId(2);
        svc.try_ingest_position(idle, 0).expect("capacity");
        for tick in 0..6 {
            // `busy` keeps ingesting every tick; `idle` went quiet.
            svc.try_ingest_position(busy, tick).expect("capacity");
            svc.drain(&pool);
            let _ = svc.poll(idle);
            let _ = svc.poll(busy);
        }
        assert_eq!(svc.sessions(), 1, "idle session evicted");
        assert!(svc.poll(idle).is_none(), "evicted session is gone");
        assert!(svc.poll(busy).is_some(), "active session survives");
    }

    #[test]
    fn eviction_never_drops_queued_items_or_unpolled_outputs() {
        let svc = harness(
            30,
            ServiceConfig::default()
                .with_queue_capacity(8)
                .with_idle_eviction(1),
        );
        let pool = ThreadPool::sequential();
        let session = SessionId(4);
        for position in 0..6 {
            svc.try_ingest_position(session, position)
                .expect("capacity");
        }
        // Many drains pass; outputs are never polled, so the session —
        // though idle — must not be evicted out from under its data.
        for _ in 0..5 {
            svc.drain(&pool);
        }
        assert_eq!(svc.sessions(), 1, "unpolled outputs pin the session");
        let (sev, _) = svc.poll(session).expect("still alive");
        assert!(!sev.is_empty());
        // Now fully delivered and idle: the next drains sweep it.
        for _ in 0..3 {
            svc.drain(&pool);
        }
        assert_eq!(svc.sessions(), 0, "delivered idle session evicted");
    }

    #[test]
    fn service_pool_shares_one_service_per_name() {
        let registry = ServicePool::new();
        assert!(registry.is_empty());
        let a = registry.get_or_build("toy", || harness(10, ServiceConfig::default()));
        let b = registry.get_or_build("toy", || unreachable!("cached after first touch"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(registry.len(), 1);
        assert!(registry.get("toy").is_some());
        assert!(registry.get("other").is_none());
        // Sessions opened through one handle are visible through the
        // other: it is the same service.
        a.open(SessionId(1));
        assert_eq!(b.sessions(), 1);
    }
}
