//! The multi-tenant monitor: session-keyed shards over the streaming
//! engine.
//!
//! One [`MonitorService`] serves many concurrent sessions of **one**
//! scenario. The expensive scenario resources — the prepared assertion
//! set and its preparer — are built once and shared by every session
//! behind `Arc`s, so opening a session is O(1) allocation, not O(set).
//! Each session owns a [`SessionShard`]-worth of private state: a
//! bounded ingest queue (backpressure, not unbounded growth), a
//! [`SlidingWindows`] slider, an [`AssertionDb`] with optional
//! retention, and the not-yet-polled score outputs.
//!
//! Work divides at **session granularity**: a drain pass hands whole
//! sessions to pool workers ([`ThreadPool::map_indexed_coarse`]), so a
//! worker scores a session's entire backlog with warm caches and zero
//! cross-worker window sharing — the per-window fan-out that ROADMAP
//! item 2 measured *hurting* throughput never happens here.
//!
//! Determinism: a session's outputs depend only on the items ingested
//! into that session, in order. Drains may interleave sessions any way
//! the scheduler likes; the per-session output sequence is bit-for-bit
//! the sequential [`omg_scenario::stream_score_scenario`] run of the
//! same items (the conformance suite enforces this for every registered
//! scenario at 1/2/8 workers).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use omg_core::runtime::ThreadPool;
use omg_core::stream::{Prepare, SlidingWindows};
use omg_core::{AssertionDb, AssertionSet, SeverityMatrix};
use omg_scenario::{score_window, Scenario, Scores};

use crate::SyncMap;

/// Identifies one monitoring session (one deployed stream) of a
/// service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Why an ingest was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestError {
    /// The session's bounded queue is at capacity; the item was **not**
    /// accepted and nothing already accepted was dropped. Drain the
    /// service (or poll less often) and retry.
    QueueFull {
        /// The session whose queue is full.
        session: SessionId,
        /// The configured per-session queue capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            IngestError::QueueFull { session, capacity } => {
                write!(f, "{session}: ingest queue full (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Tuning knobs for a [`MonitorService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum items a session may have queued (accepted but not yet
    /// scored) before [`MonitorService::try_ingest`] pushes back with
    /// [`IngestError::QueueFull`].
    pub queue_capacity: usize,
    /// Per-session [`AssertionDb`] retention: keep at most this many
    /// recent sample rows resident (lifetime fire counters survive —
    /// see [`AssertionDb::retain_recent`]). `None` retains everything.
    pub retained_samples: Option<usize>,
    /// Evict a session after this many drain passes with no ingest,
    /// once its queue is drained and its outputs polled. `None` never
    /// evicts.
    pub idle_ticks: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            retained_samples: None,
            idle_ticks: None,
        }
    }
}

impl ServiceConfig {
    /// Sets the per-session queue capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must accept at least one item");
        self.queue_capacity = capacity;
        self
    }

    /// Caps each session's resident database at `keep` recent samples.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is zero.
    #[must_use]
    pub fn with_retention(mut self, keep: usize) -> Self {
        assert!(keep > 0, "retention cap must keep at least one sample");
        self.retained_samples = Some(keep);
        self
    }

    /// Evicts sessions idle for `ticks` consecutive drain passes.
    #[must_use]
    pub fn with_idle_eviction(mut self, ticks: u64) -> Self {
        self.idle_ticks = Some(ticks);
        self
    }
}

/// One session's private monitoring state.
struct SessionShard<Sc: Scenario> {
    /// Accepted-but-unscored items (bounded by the config's capacity).
    queue: VecDeque<Sc::Item>,
    /// The session's window slider (owns the live item suffix).
    windows: SlidingWindows<Sc::Item>,
    /// The session's assertion database (optionally retention-capped).
    db: AssertionDb,
    /// Scored severity rows not yet delivered to a `poll`, columnar.
    out_severities: SeverityMatrix,
    /// Scored uncertainties not yet delivered to a `poll`.
    out_uncertainties: Vec<f64>,
    /// The reusable dense severity row for `score_window`.
    values: Vec<f64>,
    /// Drain-clock value of the last ingest (drives idle eviction).
    last_active: u64,
    /// Items accepted over the session's lifetime.
    accepted: usize,
    /// Windows scored over the session's lifetime.
    scored: usize,
}

impl<Sc: Scenario> SessionShard<Sc> {
    fn new(half: usize, now: u64) -> Self {
        Self {
            queue: VecDeque::new(),
            windows: SlidingWindows::new(half),
            db: AssertionDb::new(),
            out_severities: SeverityMatrix::new(),
            out_uncertainties: Vec::new(),
            values: Vec::new(),
            last_active: now,
            accepted: 0,
            scored: 0,
        }
    }
}

/// A summary returned when a session is finished and torn down.
#[derive(Debug)]
pub struct SessionReport {
    /// The finished session.
    pub session: SessionId,
    /// Outputs scored since the last poll, including the flushed
    /// right-edge tail windows.
    pub scores: Scores,
    /// The session's assertion database (retention applied).
    pub db: AssertionDb,
    /// Items accepted over the session's lifetime.
    pub accepted: usize,
    /// Windows scored over the session's lifetime (equals `accepted`
    /// once finished: every position's window is flushed).
    pub scored: usize,
}

/// A long-lived multi-tenant monitor for one scenario.
///
/// See the [module docs](self) for the architecture; see
/// [`crate::ServicePool`] for the cross-scenario registry that shares
/// whole services by name.
pub struct MonitorService<Sc: Scenario> {
    scenario: Arc<Sc>,
    set: Arc<AssertionSet<Sc::Sample, Sc::Prep>>,
    preparer: Arc<dyn Prepare<Sc::Sample, Prepared = Sc::Prep>>,
    config: ServiceConfig,
    shards: SyncMap<SessionId, Mutex<SessionShard<Sc>>>,
    /// Monotonic drain counter — the service's notion of time.
    clock: AtomicU64,
    accepted_total: AtomicUsize,
    scored_total: AtomicUsize,
}

impl<Sc: Scenario> MonitorService<Sc> {
    /// Builds a service around a scenario, constructing the shared
    /// prepared assertion set and preparer once.
    pub fn new(scenario: Sc, config: ServiceConfig) -> Self {
        let set = Arc::new(scenario.prepared_set());
        let preparer: Arc<dyn Prepare<Sc::Sample, Prepared = Sc::Prep>> =
            Arc::from(scenario.preparer());
        Self::with_shared(Arc::new(scenario), set, preparer, config)
    }

    /// Builds a service around **already-shared** scenario resources —
    /// how several services (say, per tenant tier) reuse one assertion
    /// set and preparer without rebuilding them.
    pub fn with_shared(
        scenario: Arc<Sc>,
        set: Arc<AssertionSet<Sc::Sample, Sc::Prep>>,
        preparer: Arc<dyn Prepare<Sc::Sample, Prepared = Sc::Prep>>,
        config: ServiceConfig,
    ) -> Self {
        Self {
            scenario,
            set,
            preparer,
            config,
            shards: SyncMap::new(),
            clock: AtomicU64::new(0),
            accepted_total: AtomicUsize::new(0),
            scored_total: AtomicUsize::new(0),
        }
    }

    /// The scenario this service monitors.
    pub fn scenario(&self) -> &Sc {
        &self.scenario
    }

    /// The shared prepared assertion set.
    pub fn assertion_set(&self) -> &AssertionSet<Sc::Sample, Sc::Prep> {
        &self.set
    }

    /// The shared preparer.
    pub fn preparer(&self) -> &(dyn Prepare<Sc::Sample, Prepared = Sc::Prep> + '_) {
        self.preparer.as_ref()
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    fn shard(&self, session: SessionId) -> Arc<Mutex<SessionShard<Sc>>> {
        let half = self.scenario.window_half();
        let now = self.clock.load(Ordering::Relaxed);
        self.shards.get_or_init(session, || {
            Arc::new(Mutex::new(SessionShard::new(half, now)))
        })
    }

    /// Opens a session explicitly (ingest opens implicitly; this exists
    /// so a tenant can pre-register before traffic arrives).
    pub fn open(&self, session: SessionId) {
        let _ = self.shard(session);
    }

    /// Offers one item to a session, opening it on first touch.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError::QueueFull`] — without accepting the item
    /// or disturbing anything already accepted — when the session's
    /// bounded queue is at capacity. The caller applies backpressure
    /// upstream and retries after a [`MonitorService::drain`].
    pub fn try_ingest(&self, session: SessionId, item: Sc::Item) -> Result<(), IngestError> {
        let shard = self.shard(session);
        let mut shard = shard.lock().expect("shard poisoned");
        if shard.queue.len() >= self.config.queue_capacity {
            return Err(IngestError::QueueFull {
                session,
                capacity: self.config.queue_capacity,
            });
        }
        shard.queue.push_back(item);
        shard.accepted += 1;
        shard.last_active = self.clock.load(Ordering::Relaxed);
        self.accepted_total.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Scores one shard's whole backlog: the coarse per-session work
    /// unit a drain pass hands to a pool worker.
    fn drain_shard(
        scenario: &Sc,
        set: &AssertionSet<Sc::Sample, Sc::Prep>,
        preparer: &(dyn Prepare<Sc::Sample, Prepared = Sc::Prep> + '_),
        retained: Option<usize>,
        shard: &mut SessionShard<Sc>,
    ) -> usize {
        let SessionShard {
            queue,
            windows,
            db,
            out_severities,
            out_uncertainties,
            values,
            scored,
            ..
        } = shard;
        let mut emitted = 0usize;
        while let Some(item) = queue.pop_front() {
            if let Some(w) = windows.push(item) {
                let unc = score_window(scenario, set, preparer, w.items, w.center, values);
                db.record_row(w.index, values);
                if let Some(keep) = retained {
                    db.retain_recent(keep);
                }
                out_severities.push_row(values);
                out_uncertainties.push(unc);
                emitted += 1;
            }
        }
        *scored += emitted;
        emitted
    }

    /// Drains every session's queue: whole sessions fan out across the
    /// pool's workers (coarse work division — see the module docs), and
    /// each worker scores its session's backlog in ingest order.
    /// Returns the number of windows scored; runs idle eviction if the
    /// config enables it.
    pub fn drain(&self, pool: &ThreadPool) -> usize {
        self.clock.fetch_add(1, Ordering::Relaxed);
        let shards = self.shards.entries();
        let scenario = &*self.scenario;
        let set = &*self.set;
        let preparer = self.preparer.as_ref();
        let retained = self.config.retained_samples;
        let scored: usize = pool
            // PANIC: i < shards.len() by map_indexed_coarse's contract;
            // a poisoned shard means a scorer panicked mid-drain, so
            // the shard state is unusable — propagate.
            .map_indexed_coarse(shards.len(), |i| {
                let mut shard = shards[i].1.lock().expect("shard poisoned");
                Self::drain_shard(scenario, set, preparer, retained, &mut shard)
            })
            .into_iter()
            .sum();
        self.scored_total.fetch_add(scored, Ordering::Relaxed);
        if self.config.idle_ticks.is_some() {
            self.evict_idle();
        }
        scored
    }

    /// Takes a session's scored-but-undelivered outputs (severity rows
    /// and uncertainties, in stream order), leaving its buffers empty —
    /// delivery is what keeps a long-lived session's memory flat.
    /// `None` if the session does not exist.
    pub fn poll(&self, session: SessionId) -> Option<Scores> {
        let shard = self.shards.get(&session)?;
        let mut shard = shard.lock().expect("shard poisoned");
        Some((
            std::mem::take(&mut shard.out_severities),
            std::mem::take(&mut shard.out_uncertainties),
        ))
    }

    /// Finishes a session: drains its remaining queue, flushes the
    /// right-edge tail windows (every accepted position ends up
    /// scored), removes the shard, and returns the final report. `None`
    /// if the session does not exist.
    pub fn finish(&self, session: SessionId) -> Option<SessionReport> {
        let shard = self.shards.remove(&session)?;
        // PANIC: poisoning propagation — the drain already panicked.
        let mut shard = shard.lock().expect("shard poisoned");
        let retained = self.config.retained_samples;
        let mut emitted = Self::drain_shard(
            &self.scenario,
            &self.set,
            self.preparer.as_ref(),
            retained,
            &mut shard,
        );
        let half = self.scenario.window_half();
        let slider = std::mem::replace(&mut shard.windows, SlidingWindows::new(half));
        let mut tail = slider.finish();
        let SessionShard {
            db,
            out_severities,
            out_uncertainties,
            values,
            ..
        } = &mut *shard;
        while let Some(w) = tail.next() {
            let unc = score_window(
                &*self.scenario,
                &self.set,
                self.preparer.as_ref(),
                w.items,
                w.center,
                values,
            );
            db.record_row(w.index, values);
            if let Some(keep) = retained {
                db.retain_recent(keep);
            }
            out_severities.push_row(values);
            out_uncertainties.push(unc);
            emitted += 1;
        }
        shard.scored += emitted;
        self.scored_total.fetch_add(emitted, Ordering::Relaxed);
        Some(SessionReport {
            session,
            scores: (
                std::mem::take(&mut shard.out_severities),
                std::mem::take(&mut shard.out_uncertainties),
            ),
            db: std::mem::take(&mut shard.db),
            accepted: shard.accepted,
            scored: shard.scored,
        })
    }

    /// Evicts sessions idle for at least the configured `idle_ticks`
    /// drain passes, returning the evicted ids. A session is only
    /// evictable once its queue is drained and its outputs polled —
    /// accepted items and undelivered scores are **never** dropped;
    /// un-emitted lookahead windows of an abandoned stream are (a
    /// session that wants its tail flushed calls
    /// [`MonitorService::finish`]). No-op when the config disables
    /// eviction.
    pub fn evict_idle(&self) -> Vec<SessionId> {
        let Some(idle) = self.config.idle_ticks else {
            return Vec::new();
        };
        let now = self.clock.load(Ordering::Relaxed);
        let cutoff = now.saturating_sub(idle);
        self.shards
            .retain(|_, shard| {
                // PANIC: poisoning propagation, as in drain/finish.
                let s = shard.lock().expect("shard poisoned");
                let drained = s.queue.is_empty() && s.out_severities.is_empty();
                !(drained && s.last_active < cutoff)
            })
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    /// Number of open sessions.
    pub fn sessions(&self) -> usize {
        self.shards.len()
    }

    /// Items currently queued (accepted, not yet scored) across all
    /// sessions.
    pub fn queued(&self) -> usize {
        self.shards
            .entries()
            .iter()
            .map(|(_, s)| s.lock().expect("shard poisoned").queue.len())
            .sum()
    }

    /// Database rows currently resident across all sessions — the
    /// number retention keeps flat under unbounded traffic.
    pub fn resident_records(&self) -> usize {
        self.shards
            .entries()
            .iter()
            .map(|(_, s)| s.lock().expect("shard poisoned").db.len())
            .sum()
    }

    /// Items accepted over the service's lifetime.
    pub fn accepted(&self) -> usize {
        self.accepted_total.load(Ordering::Relaxed)
    }

    /// Windows scored over the service's lifetime.
    pub fn scored(&self) -> usize {
        self.scored_total.load(Ordering::Relaxed)
    }

    /// A session's lifetime per-assertion fire counts (eviction does
    /// not forget them). `None` if the session does not exist.
    pub fn session_fire_counts(&self, session: SessionId) -> Option<Vec<usize>> {
        let shard = self.shards.get(&session)?;
        let shard = shard.lock().expect("shard poisoned");
        Some(shard.db.lifetime_fire_counts())
    }
}
