//! Active learning with BAL: compare random sampling against the paper's
//! bandit algorithm on a small night-street pool.
//!
//! ```text
//! cargo run --release -p omg-examples --bin active_learning
//! ```

use omg_active::{
    run_rounds, ActiveLearner, BalStrategy, CandidatePool, FallbackPolicy, RandomStrategy,
    SelectionStrategy,
};
use omg_core::AssertionSet;
use omg_domains::{video_assertion_set, VideoFrame, VideoWindow};
use omg_eval::DetectionEvaluator;
use omg_sim::detector::{Detection, DetectorConfig, SimDetector, TrainingBatch};
use omg_sim::traffic::{GtFrame, TrafficConfig, TrafficWorld};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A minimal end-to-end learner: detect, score with assertions, label
/// selected frames, retrain, evaluate mAP on a held-out day.
struct Learner {
    pool: Vec<GtFrame>,
    test: Vec<GtFrame>,
    detector: SimDetector,
    assertions: AssertionSet<VideoWindow>,
    unlabeled: Vec<usize>,
    batch: TrainingBatch,
}

impl Learner {
    fn new(seed: u64) -> Self {
        let pool = TrafficWorld::new(TrafficConfig::night_street(), seed).steps(600);
        let test = TrafficWorld::new(TrafficConfig::night_street(), seed ^ 0xFF).steps(300);
        let n = pool.len();
        Self {
            pool,
            test,
            detector: SimDetector::pretrained(DetectorConfig::default(), 1),
            assertions: video_assertion_set(0.45),
            unlabeled: (0..n).collect(),
            batch: TrainingBatch::new(),
        }
    }

    fn detect(&self, frames: &[GtFrame]) -> Vec<Vec<Detection>> {
        frames
            .iter()
            .map(|f| self.detector.detect_frame(f.index, &f.signals))
            .collect()
    }

    fn window(&self, dets: &[Vec<Detection>], center: usize) -> VideoWindow {
        let lo = center.saturating_sub(2);
        let hi = (center + 3).min(self.pool.len());
        VideoWindow::new(
            (lo..hi)
                .map(|i| VideoFrame {
                    index: self.pool[i].index,
                    time: self.pool[i].time,
                    dets: dets[i].iter().map(|d| d.scored).collect(),
                })
                .collect(),
            center - lo,
        )
    }
}

impl ActiveLearner for Learner {
    fn pool(&mut self) -> CandidatePool {
        let dets = self.detect(&self.pool);
        let mut severities = Vec::new();
        let mut uncertainties = Vec::new();
        for &i in &self.unlabeled {
            let outcomes = self.assertions.check_all(&self.window(&dets, i));
            severities.push(outcomes.iter().map(|(_, s)| s.value()).collect());
            let unc = dets[i]
                .iter()
                .map(|d| 1.0 - d.scored.score)
                .fold(0.0f64, f64::max);
            uncertainties.push(unc);
        }
        CandidatePool::new(severities, uncertainties).expect("consistent pool")
    }

    fn label_and_train(&mut self, selection: &[usize], rng: &mut StdRng) {
        let chosen: Vec<usize> = selection.iter().map(|&p| self.unlabeled[p]).collect();
        for &i in &chosen {
            for s in &self.pool[i].signals {
                if s.is_clutter() {
                    self.batch.add_labeled_background(s);
                } else {
                    self.batch.add_labeled_object(s);
                }
            }
        }
        self.unlabeled.retain(|i| !chosen.contains(i));
        self.detector.train(&self.batch, 4, rng);
    }

    fn evaluate(&mut self) -> f64 {
        let mut ev = DetectionEvaluator::new(0.5);
        for f in &self.test {
            let dets = self.detector.detect_frame(f.index, &f.signals);
            let scored: Vec<_> = dets.iter().map(|d| d.scored).collect();
            ev.add_frame(&scored, &f.gt_boxes());
        }
        ev.map_percent()
    }
}

fn main() {
    for (name, mut strategy) in [
        (
            "random",
            Box::new(RandomStrategy) as Box<dyn SelectionStrategy>,
        ),
        (
            "BAL",
            Box::new(BalStrategy::new(FallbackPolicy::Uncertainty)),
        ),
    ] {
        let mut learner = Learner::new(21);
        let mut rng = StdRng::seed_from_u64(9);
        let records = run_rounds(&mut learner, strategy.as_mut(), 5, 60, &mut rng);
        let curve: Vec<String> = records.iter().map(|r| format!("{:.1}", r.metric)).collect();
        println!("{name:<7} mAP% per round: {}", curve.join(" -> "));
    }
    println!("(BAL spends its budget on assertion-flagged frames, which concentrate the");
    println!(" detector's systematic night-time errors — see Figure 4a in EXPERIMENTS.md)");
}
