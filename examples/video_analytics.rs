//! Video analytics: run the paper's three video assertions (`multibox`,
//! `flicker`, `appear`) over a simulated night-street stream and report
//! what they catch.
//!
//! ```text
//! cargo run --release -p omg-examples --bin video_analytics
//! ```

use omg_core::Monitor;
use omg_domains::{video_assertion_set, VideoFrame, VideoWindow};
use omg_sim::detector::{DetectorConfig, SimDetector};
use omg_sim::traffic::{TrafficConfig, TrafficWorld};

fn main() {
    // One minute of simulated night video.
    let mut world = TrafficWorld::new(TrafficConfig::night_street(), 7);
    let frames = world.steps(600);

    // The pretrained (still-image) detector deployed on night video.
    let detector = SimDetector::pretrained(DetectorConfig::default(), 1);
    let dets: Vec<Vec<_>> = frames
        .iter()
        .map(|f| detector.detect_frame(f.index, &f.signals))
        .collect();

    let mut monitor = Monitor::with_assertions(video_assertion_set(0.45));

    // Slide a 5-frame window over the stream, as OMG's
    // `flickering(recent_frames, recent_outputs)` signature implies.
    for center in 0..frames.len() {
        let lo = center.saturating_sub(2);
        let hi = (center + 3).min(frames.len());
        let window = VideoWindow::new(
            (lo..hi)
                .map(|i| VideoFrame {
                    index: frames[i].index,
                    time: frames[i].time,
                    dets: dets[i].iter().map(|d| d.scored).collect(),
                })
                .collect(),
            center - lo,
        );
        monitor.process(&window);
    }

    println!("night-street monitoring report ({} frames):", frames.len());
    for id in monitor.assertions().ids() {
        let count = monitor.db().fire_count(id);
        let top = monitor.db().top_by_severity(id, 1);
        println!(
            "  {:<9} fired on {:>4} windows; worst window severity {}",
            monitor.assertions().name(id),
            count,
            top.first().map_or(0.0, |&(_, s)| s.value()),
        );
    }
    let flagged = monitor.db().any_fired_samples().len();
    println!(
        "  {} of {} windows flagged in total — candidates for labeling or weak supervision",
        flagged,
        frames.len()
    );
}
