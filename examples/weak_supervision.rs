//! Weak supervision: turn consistency-assertion corrections into training
//! data with no human labels (§4.2, Table 4).
//!
//! ```text
//! cargo run --release -p omg-examples --bin weak_supervision
//! ```

use omg_domains::weak::{video_weak_batch, VideoWeakConfig};
use omg_eval::DetectionEvaluator;
use omg_sim::detector::{DetectorConfig, SimDetector};
use omg_sim::traffic::{GtFrame, TrafficConfig, TrafficWorld};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn map_percent(detector: &SimDetector, frames: &[GtFrame]) -> f64 {
    let mut ev = DetectionEvaluator::new(0.5);
    for f in frames {
        let dets = detector.detect_frame(f.index, &f.signals);
        let scored: Vec<_> = dets.iter().map(|d| d.scored).collect();
        ev.add_frame(&scored, &f.gt_boxes());
    }
    ev.map_percent()
}

fn main() {
    let pool = TrafficWorld::new(TrafficConfig::night_street(), 5).steps(1000);
    let test = TrafficWorld::new(TrafficConfig::night_street(), 55).steps(400);
    let detector = SimDetector::pretrained(DetectorConfig::default(), 1);

    let before = map_percent(&detector, &test);

    // Run the detector over unlabeled footage and harvest corrections:
    // flicker gaps become interpolated boxes, duplicates become
    // suppression examples, class dissent becomes majority-vote labels.
    let dets: Vec<Vec<_>> = pool
        .iter()
        .map(|f| detector.detect_frame(f.index, &f.signals))
        .collect();
    let batch = video_weak_batch(&pool, &dets, &VideoWeakConfig::default());
    println!(
        "harvested weak labels from 1000 unlabeled frames: {} detection, {} class, {} duplicate examples",
        batch.len_det(),
        batch.len_cls(),
        batch.len_dup()
    );

    let mut tuned = detector.clone();
    let mut rng = StdRng::seed_from_u64(3);
    tuned.train(&batch, 6, &mut rng);
    let after = map_percent(&tuned, &test);

    println!(
        "held-out mAP: {before:.1}% -> {after:.1}% ({:+.1}% relative) with zero human labels",
        100.0 * (after - before) / before.max(1e-9)
    );
}
