//! Quickstart: register model assertions on a runtime monitor and watch a
//! stream of model outputs.
//!
//! ```text
//! cargo run -p omg-examples --bin quickstart
//! ```

use omg_core::{Monitor, Severity};

/// The domain sample: a sliding window of a classifier's recent outputs.
struct Sample {
    time: f64,
    recent: Vec<usize>,
}

fn main() {
    let mut monitor: Monitor<Sample> = Monitor::new();

    // OMG's `AddAssertion(func)`: any closure over the model's inputs and
    // outputs. This one flags rapid A -> B -> A oscillations.
    let flip_flop = monitor.assertions_mut().add_fn("flip-flop", |s: &Sample| {
        let oscillations = s
            .recent
            .windows(3)
            .filter(|w| w[0] == w[2] && w[0] != w[1])
            .count();
        Severity::from_count(oscillations)
    });

    // A Boolean assertion: the model should never output class 9.
    monitor.assertions_mut().add_fn("no-class-9", |s: &Sample| {
        Severity::from_bool(s.recent.last() == Some(&9))
    });

    // A corrective action, like "shut down the autopilot" in the paper:
    // fire on any severity >= 2.
    monitor.on_severity(Severity::new(2.0), |s: &Sample, report| {
        println!(
            "  !! corrective action at t={:.1}: max severity {}",
            s.time,
            report.max_severity()
        );
    });

    // Simulate a model that oscillates mid-stream.
    let outputs = [0, 0, 0, 1, 0, 1, 0, 0, 9, 0];
    for t in 2..outputs.len() {
        let sample = Sample {
            time: t as f64,
            recent: outputs[..=t].to_vec(),
        };
        let report = monitor.process(&sample);
        println!(
            "t={:>2}  outputs={:?}  fired={}",
            t,
            &outputs[t.saturating_sub(2)..=t],
            report.any_fired()
        );
    }

    // The assertion database answers monitoring queries after the fact.
    println!(
        "\nflip-flop fired on {} of {} samples; worst sample: {:?}",
        monitor.db().fire_count(flip_flop),
        monitor.samples_processed(),
        monitor.db().top_by_severity(flip_flop, 1)
    );
}
