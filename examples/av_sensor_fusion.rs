//! AV sensor fusion: the `agree` assertion checks LIDAR and camera models
//! against each other by projecting 3D boxes onto the image plane (§2.2).
//!
//! ```text
//! cargo run --release -p omg-examples --bin av_sensor_fusion
//! ```

use omg_core::Monitor;
use omg_domains::{av_assertion_set, AvFrame};
use omg_sim::av::{AvConfig, AvWorld};
use omg_sim::detector::{DetectorConfig, SimDetector};

fn main() {
    let world = AvWorld::new(AvConfig::default(), 3);
    let camera_model = SimDetector::pretrained(
        DetectorConfig {
            detect_temperature: 2.6,
            ..DetectorConfig::default()
        },
        1,
    );

    let mut monitor = Monitor::with_assertions(av_assertion_set());
    let mut disagreements = 0usize;
    let mut samples = 0usize;
    for scene in 0..10u64 {
        for sample in world.scene(scene) {
            let dets =
                camera_model.detect_frame(scene * 10_000 + sample.index as u64, &sample.signals);
            let frame = AvFrame {
                time: sample.time,
                camera_dets: dets.iter().map(|d| d.scored).collect(),
                lidar_boxes: sample
                    .lidar
                    .iter()
                    .filter(|l| l.score >= 0.3)
                    .map(|l| l.bbox)
                    .collect(),
                camera: sample.camera,
            };
            let report = monitor.process(&frame);
            samples += 1;
            if report.any_fired() {
                disagreements += 1;
            }
        }
    }

    println!("AV sensor-fusion monitoring over {samples} samples (2 Hz):");
    for id in monitor.assertions().ids() {
        println!(
            "  {:<9} fired on {:>4} samples",
            monitor.assertions().name(id),
            monitor.db().fire_count(id)
        );
    }
    println!(
        "  {} samples had some sensor disagreement — \"at least one of the sensors \
         returned an incorrect answer\"",
        disagreements
    );
}
