//! ECG monitoring: train an MLP rhythm classifier, deploy it on a
//! held-out recording, and let the 30-second consistency assertion flag
//! oscillating predictions (§2.2, §4.1).
//!
//! ```text
//! cargo run --release -p omg-examples --bin ecg_monitoring
//! ```

use omg_core::Monitor;
use omg_domains::ecg::ecg_assertion;
use omg_domains::EcgWindow;
use omg_learn::{Dataset, Mlp, MlpConfig};
use omg_sim::ecg::{EcgConfig, EcgWorld, ECG_CLASSES, ECG_CLASS_NAMES, ECG_DIM};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Train a classifier on one recording...
    let mut rng = StdRng::seed_from_u64(2);
    let mut train_world = EcgWorld::new(EcgConfig::default(), 11);
    let mut data = Dataset::new(ECG_DIM);
    for p in train_world.windows(600) {
        data.push(p.features, p.true_class);
    }
    let mut mlp = Mlp::new(
        MlpConfig {
            input_dim: ECG_DIM,
            hidden: vec![12],
            classes: ECG_CLASSES,
            lr: 0.05,
        },
        &mut rng,
    );
    for _ in 0..60 {
        mlp.train_epoch(&data, 16, &mut rng);
    }

    // ...deploy it on another and monitor the prediction stream.
    let mut deploy_world = EcgWorld::new(EcgConfig::default(), 99);
    let points = deploy_world.windows(400);
    let preds: Vec<usize> = points.iter().map(|p| mlp.predict(&p.features)).collect();
    let times: Vec<f64> = points.iter().map(|p| p.time).collect();

    let mut monitor: Monitor<EcgWindow> = Monitor::new();
    let id = monitor.assertions_mut().add(ecg_assertion());

    let mut example: Option<(f64, Vec<usize>)> = None;
    for i in 0..points.len() {
        let lo = i.saturating_sub(3);
        let hi = (i + 4).min(points.len());
        let window = EcgWindow::new(times[lo..hi].to_vec(), preds[lo..hi].to_vec(), i - lo);
        let fired = monitor.assertions().check_one(id, &window).fired();
        if fired && example.is_none() {
            example = Some((times[i], preds[lo..hi].to_vec()));
        }
        monitor.process(&window);
    }

    let acc = points
        .iter()
        .zip(&preds)
        .filter(|(p, &pred)| p.true_class == pred)
        .count() as f64
        / points.len() as f64;
    println!(
        "deployed rhythm classifier: {:.1}% window accuracy on the monitored recording",
        100.0 * acc
    );
    println!(
        "ECG assertion fired on {} of {} windows",
        monitor.db().fire_count(id),
        points.len()
    );
    if let Some((t, context)) = example {
        let names: Vec<&str> = context.iter().map(|&c| ECG_CLASS_NAMES[c]).collect();
        println!(
            "first violation near t={t:.0}s: predictions {names:?} oscillate within the \
             30 s guideline — a rhythm cannot flip that fast"
        );
    }
}
