//! Label validation (Appendix E): model assertions are agnostic to the
//! source of the outputs — here they check a *human* labeling service.
//!
//! ```text
//! cargo run --release -p omg-examples --bin label_validation
//! ```

use omg_domains::label_check::check_labels;
use omg_sim::labeler::HumanLabeler;
use omg_sim::traffic::{TrafficConfig, TrafficWorld};

fn main() {
    let mut world = TrafficWorld::new(TrafficConfig::night_street(), 42);
    let frames = world.steps(400);

    // A Scale-like service: perfect localization, occasional class errors
    // (some consistent per vehicle, some transient slips).
    let labeler = HumanLabeler::scale_like(11);
    let labeled: Vec<_> = frames.iter().map(|f| labeler.label_frame(f)).collect();

    let total: usize = labeled.iter().map(Vec::len).sum();
    let errors: usize = labeled
        .iter()
        .flat_map(|f| f.iter())
        .filter(|l| l.is_error())
        .count();

    // Track the labeled boxes and flag labels that disagree with their
    // track's majority class.
    let report = check_labels(&labeled);
    let caught = report.caught_errors(&labeled);
    let false_flags = report.flagged.len() - caught;

    println!(
        "validated {total} human labels across {} frames:",
        frames.len()
    );
    println!("  true label errors:   {errors}");
    println!(
        "  flagged by assertion: {} ({caught} real, {false_flags} false flags)",
        report.flagged.len()
    );
    println!(
        "  caught {:.0}% of errors — consistent mislabels are invisible to a consistency check",
        if errors > 0 {
            100.0 * caught as f64 / errors as f64
        } else {
            0.0
        }
    );
}
