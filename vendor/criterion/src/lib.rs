//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this workspace vendors
//! the API subset its benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! It is a real (if simple) harness: each benchmark runs a warm-up
//! iteration, then `sample_size` timed samples, and prints the
//! per-iteration mean and min. There is no statistical outlier analysis,
//! plotting, or saved baselines.
//!
//! Two extensions the real criterion does differently:
//!
//! * **Machine-readable output** — every benchmark's mean/min lands in
//!   the committed top-level `benchmarks/BENCH_<target>.json` (written
//!   by [`criterion_main!`] via [`write_json_report`]), so the repo's
//!   perf trajectory is archived per commit.
//! * **Smoke mode** — the `OMG_BENCH_SAMPLES` environment variable
//!   overrides every benchmark's sample count (e.g. `1` in CI, where the
//!   goal is catching bench bit-rot and emitting the JSON, not stable
//!   timings).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One benchmark's aggregated timing, collected for the JSON report.
#[derive(Debug, Clone, PartialEq, Eq)]
struct BenchResult {
    id: String,
    mean_ns: u128,
    min_ns: u128,
    samples: usize,
}

/// Results of every benchmark run so far in this process.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

fn record_result(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        return;
    }
    let total: Duration = samples.iter().sum();
    let min = samples.iter().min().copied().unwrap_or_default();
    RESULTS.lock().expect("results lock").push(BenchResult {
        id: id.to_string(),
        mean_ns: total.as_nanos() / samples.len() as u128,
        min_ns: min.as_nanos(),
        samples: samples.len(),
    });
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn render_json(bench: &str, results: &[BenchResult]) -> String {
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"id\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}, \"samples\": {}}}",
                json_escape(&r.id),
                r.mean_ns,
                r.min_ns,
                r.samples
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"{}\",\n  \"results\": [\n{}\n  ]\n}}\n",
        json_escape(bench),
        rows.join(",\n")
    )
}

/// The workspace root: the nearest ancestor holding a `Cargo.lock`
/// (bench binaries run with the package directory as CWD), else `.`.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for dir in cwd.ancestors() {
        if dir.join("Cargo.lock").is_file() {
            return dir.to_path_buf();
        }
    }
    PathBuf::from(".")
}

/// The directory machine-readable bench results land in: the
/// **committed** top-level `benchmarks/` directory at the workspace
/// root (not under `target/`, which is gitignored — the archives are
/// the repo's perf trajectory and travel with the commit). Exposed so
/// non-criterion measurement binaries (e.g. `exp_throughput`) write
/// their JSON next to the harness outputs.
pub fn bench_output_dir() -> PathBuf {
    workspace_root().join("benchmarks")
}

/// Writes every benchmark result recorded so far to
/// `benchmarks/BENCH_<bench>.json` (mean/min nanoseconds per
/// benchmark). Called by [`criterion_main!`] with the bench target's
/// crate name; a failure to write is reported but does not fail the
/// bench run.
pub fn write_json_report(bench: &str) {
    let results = RESULTS.lock().expect("results lock");
    if results.is_empty() {
        return;
    }
    let dir = bench_output_dir();
    let path = dir.join(format!("BENCH_{bench}.json"));
    let json = render_json(bench, &results);
    let written = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, json));
    match written {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// The `OMG_BENCH_SAMPLES` override, if set to a positive integer.
fn sample_size_override() -> Option<usize> {
    std::env::var("OMG_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How [`Bencher::iter_batched`] amortizes setup cost. The shim times the
/// routine per batch element regardless of the variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every routine call.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, `"{name}/{param}"`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Runs the measured routine and accumulates timing samples.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    println!(
        "{id:<40} mean {mean:>12.3?}   min {min:>12.3?}   ({} samples)",
        samples.len()
    );
    record_result(id, samples);
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: sample_size_override().unwrap_or(10),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark. The
    /// `OMG_BENCH_SAMPLES` environment variable wins over the coded
    /// value (CI smoke mode sets it to 1).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = sample_size_override().unwrap_or(n);
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(id, &b.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// A named set of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Runs a benchmark in this group against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates a `main` that runs each group, then writes the bench
/// target's JSON report (`benchmarks/BENCH_<crate>.json`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report(env!("CARGO_CRATE_NAME"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("tiny/iter", |b| b.iter(|| black_box(2 + 2)));
        let mut g = c.benchmark_group("tiny");
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = tiny
    }

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn iter_batched_counts_samples() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn json_report_renders_results() {
        let results = vec![
            BenchResult {
                id: "monitor/video_window".to_string(),
                mean_ns: 1500,
                min_ns: 1200,
                samples: 20,
            },
            BenchResult {
                id: "odd \"name\"".to_string(),
                mean_ns: 10,
                min_ns: 10,
                samples: 1,
            },
        ];
        let json = render_json("engine", &results);
        assert!(json.contains("\"bench\": \"engine\""));
        assert!(json.contains("\"id\": \"monitor/video_window\""));
        assert!(json.contains("\"mean_ns\": 1500"));
        assert!(json.contains("\\\"name\\\""));
        // Balanced-brace sanity: hand-rolled JSON stays parseable.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
    }

    #[test]
    fn json_escape_handles_control_chars() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }

    #[test]
    fn bench_runs_record_results() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("record-test/unique-id", |b| b.iter(|| black_box(1 + 1)));
        let results = RESULTS.lock().unwrap();
        let rec = results
            .iter()
            .find(|r| r.id == "record-test/unique-id")
            .expect("bench result recorded");
        assert_eq!(rec.samples, 2);
        assert!(rec.min_ns <= rec.mean_ns);
    }
}
