//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this workspace vendors
//! the API subset its benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! It is a real (if simple) harness: each benchmark runs a warm-up
//! iteration, then `sample_size` timed samples, and prints the
//! per-iteration mean and min. There is no statistical outlier analysis,
//! plotting, or saved baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How [`Bencher::iter_batched`] amortizes setup cost. The shim times the
/// routine per batch element regardless of the variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every routine call.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, `"{name}/{param}"`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Runs the measured routine and accumulates timing samples.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    println!(
        "{id:<40} mean {mean:>12.3?}   min {min:>12.3?}   ({} samples)",
        samples.len()
    );
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(id, &b.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// A named set of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Runs a benchmark in this group against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates a `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("tiny/iter", |b| b.iter(|| black_box(2 + 2)));
        let mut g = c.benchmark_group("tiny");
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = tiny
    }

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn iter_batched_counts_samples() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
