//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the *exact* `rand 0.8` API subset its code uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! The generator is SplitMix64 — a small, fast, well-tested 64-bit PRNG.
//! It is **not** cryptographically secure (the real `StdRng` is ChaCha12),
//! which is irrelevant here: every use in this workspace is a seeded,
//! reproducible simulation or test. Determinism per seed is the only
//! contract callers rely on, and this shim honours it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Creates a new PRNG from a `u64` seed. Equal seeds give equal streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirroring `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers over their full range,
    /// `bool` fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that [`Rng::gen_range`] can sample uniformly over an interval.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128 + if inclusive { 1 } else { 0 };
                let span = hi - lo;
                assert!(span > 0, "gen_range: empty range");
                // Modulo reduction has negligible bias for the span sizes
                // used in simulations/tests (span << 2^64).
                let r = (rng.next_u64() as u128 % span as u128) as i128;
                (lo + r) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low < high, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                low + (high - low) * u
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from this range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// Concrete generators (mirroring `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: SplitMix64.
    ///
    /// Deterministic per seed, `Clone` (cloning forks the stream state),
    /// and statistically solid for simulation workloads. Unlike the real
    /// `rand::rngs::StdRng` it is **not** cryptographically secure.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Sequence-related extensions (mirroring `rand::seq`).
pub mod seq {
    use super::{Rng, SampleUniform};

    /// Extension methods on slices: random element choice and shuffling.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(usize::sample_in(rng, 0, self.len(), false))
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, usize::sample_in(rng, 0, i + 1, false));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(-7i32..9);
            assert!((-7..9).contains(&x));
            let y = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&y));
            let z = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(7);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([1u8, 2, 3].choose(&mut rng).is_some());
    }
}
