//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the API subset its property tests use. Unlike a pure stub, this is a
//! working randomized property-test harness:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges and tuples of strategies;
//! * [`collection::vec`] for vectors with fixed or ranged length;
//! * [`any`] for full-range primitives;
//! * the [`proptest!`] macro, which runs each property over
//!   [`CASES`] deterministically seeded random inputs;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Differences from the real crate: failing inputs are *not* shrunk (the
//! panic message reports the case number; re-running is deterministic, so
//! every failure reproduces exactly), and the per-property case count is
//! the fixed [`CASES`] rather than a runtime config.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;

/// Number of random cases each `proptest!` property is run with.
pub const CASES: usize = 64;

/// Why a property-test case did not pass, mirroring
/// `proptest::test_runner::TestCaseError`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was falsified (`prop_assert!` and friends).
    Fail(String),
    /// The inputs were rejected as uninteresting (`prop_assume!`).
    Reject(String),
}

impl TestCaseError {
    /// A failed case.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected case.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

/// Result of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Strategies: composable random-value generators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleUniform};
    use std::ops::Range;

    /// A composable generator of random values, mirroring
    /// `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Returns a strategy producing `f(v)` for `v` drawn from `self`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<T: SampleUniform + Copy> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F),
        (A, B, C, D, E, F, G),
        (A, B, C, D, E, F, G, H)
    );

    /// Strategy for full-range primitives; see [`crate::any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// Creates the strategy.
        pub fn new() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }
}

/// Returns a strategy over the full range of primitive `T`
/// (`u64`, `i32`, `bool`, ...).
pub fn any<T: rand::Standard>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Lengths accepted by [`vec`]: an exact `usize` or a `usize` range.
    pub trait IntoLenRange {
        /// Returns the `[min, max)` length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    impl IntoLenRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.min + 1 == self.max {
                self.min
            } else {
                rng.gen_range(self.min..self.max)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Returns a strategy for `Vec`s of values drawn from `elem`, with a
    /// length drawn from `len` (an exact `usize` or a `usize..usize` range).
    pub fn vec<S: Strategy>(elem: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (min, max) = len.bounds();
        assert!(min < max, "collection::vec: empty length range");
        VecStrategy { elem, min, max }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, TestCaseError,
        TestCaseResult,
    };
}

/// Returns the deterministic RNG for case `case` of property `name`.
///
/// Used by the [`proptest!`] expansion; the seed mixes the property name
/// so different properties in one file explore different inputs.
pub fn case_rng(name: &str, case: usize) -> StdRng {
    use rand::SeedableRng;
    // FNV-1a over the property name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Defines property tests: each `fn` runs its body over [`CASES`] random
/// assignments of its `pattern in strategy` arguments.
///
/// As in the real crate, the body runs in a context whose return type is
/// [`TestCaseResult`], so `?`, `return Ok(())`, and helpers returning
/// `Result<(), TestCaseError>` all work.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __runs = 0usize;
                let mut __rejects = 0usize;
                let mut __case = 0usize;
                while __runs < $crate::CASES {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    __case += 1;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )+
                    #[allow(clippy::redundant_closure_call)]
                    let __result: $crate::TestCaseResult = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match __result {
                        Ok(()) => __runs += 1,
                        Err($crate::TestCaseError::Reject(_)) => {
                            __rejects += 1;
                            assert!(
                                __rejects <= 20 * $crate::CASES,
                                "proptest `{}`: too many prop_assume rejections",
                                stringify!($name),
                            );
                        }
                        Err($crate::TestCaseError::Fail(__reason)) => panic!(
                            "proptest `{}` falsified (case #{}): {}",
                            stringify!($name),
                            __case - 1,
                            __reason,
                        ),
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` property (or any function
/// returning [`TestCaseResult`]); failure returns `Err` rather than
/// panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond),
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+),
        );
    }};
}

/// Asserts inequality inside a `proptest!` property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __l,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            __l,
            format!($($fmt)+),
        );
    }};
}

/// Rejects the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!(
                "prop_assume failed: {}",
                stringify!($cond),
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn prop_map_applies(v in (0.0f64..1.0).prop_map(|x| x + 10.0)) {
            prop_assert!((10.0..11.0).contains(&v));
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u8..4, 1..15)) {
            prop_assert!((1..15).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn exact_vec_len(v in crate::collection::vec(-1.0f64..1.0, 4)) {
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn any_generates(x in any::<bool>(), y in any::<u64>()) {
            // Smoke test: full-range primitives generate without panicking.
            let _ = (x, y);
        }
    }
}
