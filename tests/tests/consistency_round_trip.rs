//! Cross-crate consistency-API round trip: tracker identifiers feed the
//! consistency engine, violations become corrections, corrections become
//! valid training data.

use omg_core::consistency::{ConsistencyEngine, Correction, Violation};
use omg_domains::helpers::{track_window, TrackedBox, VideoTrackSpec};
use omg_domains::weak::ecg_weak_labels;
use omg_domains::{VideoFrame, VideoWindow};
use omg_eval::ScoredBox;
use omg_geom::BBox2D;
use omg_track::{interpolate_gaps, IouTracker, Observation};

fn car(x: f64, class: usize) -> ScoredBox {
    ScoredBox {
        bbox: BBox2D::new(x, 100.0, x + 80.0, 160.0).unwrap(),
        class,
        score: 0.9,
    }
}

#[test]
fn flicker_produces_an_interpolated_add_correction() {
    // A car moves steadily but the detector misses frame 2.
    let frames = vec![
        VideoFrame {
            index: 0,
            time: 0.0,
            dets: vec![car(100.0, 0)],
        },
        VideoFrame {
            index: 1,
            time: 0.1,
            dets: vec![car(110.0, 0)],
        },
        VideoFrame {
            index: 2,
            time: 0.2,
            dets: vec![],
        },
        VideoFrame {
            index: 3,
            time: 0.3,
            dets: vec![car(130.0, 0)],
        },
        VideoFrame {
            index: 4,
            time: 0.4,
            dets: vec![car(140.0, 0)],
        },
    ];
    let window = VideoWindow::new(frames, 2);
    let tracked = track_window(&window);
    let engine = ConsistencyEngine::new(VideoTrackSpec).with_temporal_threshold(0.45);

    let violations = engine.check(&tracked);
    assert!(violations
        .iter()
        .any(|v| matches!(v, Violation::TemporalTransition { gap: true, .. })));

    // Corrections synthesize the missing box by interpolation.
    let corrections = engine.corrections(&tracked, |w, id, ti| {
        // Rebuild the track and interpolate its gap.
        let mut tracker = IouTracker::new(0.25, 3);
        let mut target = None;
        for i in 0..w.len() {
            let obs: Vec<Observation> = w
                .outputs_at(i)
                .iter()
                .map(|tb| Observation {
                    bbox: tb.bbox,
                    class: tb.class,
                    score: 1.0,
                })
                .collect();
            let ids = tracker.update(i, &obs);
            for (tb, tid) in w.outputs_at(i).iter().zip(ids) {
                if tb.track == *id {
                    target = Some(tid);
                }
            }
        }
        let track = tracker.track(target?)?;
        interpolate_gaps(track)
            .into_iter()
            .find(|&(f, _)| f == ti)
            .map(|(_, bbox)| TrackedBox {
                track: *id,
                class: 0,
                bbox,
            })
    });
    let adds: Vec<_> = corrections
        .iter()
        .filter_map(|c| match c {
            Correction::Add {
                time_index, output, ..
            } => Some((*time_index, output.bbox)),
            _ => None,
        })
        .collect();
    assert_eq!(adds.len(), 1);
    let (ti, bbox) = adds[0];
    assert_eq!(ti, 2);
    // The interpolated box sits midway between frames 1 and 3.
    assert!(
        (bbox.x1() - 120.0).abs() < 1.0,
        "interpolated x1 {}",
        bbox.x1()
    );
}

#[test]
fn class_flip_produces_majority_vote_correction() {
    let frames = vec![
        VideoFrame {
            index: 0,
            time: 0.0,
            dets: vec![car(100.0, 0)],
        },
        VideoFrame {
            index: 1,
            time: 0.1,
            dets: vec![car(110.0, 1)],
        }, // flip!
        VideoFrame {
            index: 2,
            time: 0.2,
            dets: vec![car(120.0, 0)],
        },
    ];
    let window = VideoWindow::new(frames, 1);
    let tracked = track_window(&window);
    let engine = ConsistencyEngine::new(VideoTrackSpec);
    let corrections = engine.corrections(&tracked, |_, _, _| None);
    let set_attrs: Vec<_> = corrections
        .iter()
        .filter_map(|c| match c {
            Correction::SetAttr {
                time_index, value, ..
            } => Some((*time_index, value.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(set_attrs.len(), 1);
    assert_eq!(set_attrs[0].0, 1);
    assert_eq!(set_attrs[0].1.as_int(), Some(0), "majority class wins");
}

#[test]
fn ecg_corrections_match_temporal_violations() {
    let times: Vec<f64> = (0..9).map(|i| i as f64 * 10.0).collect();
    let preds = vec![0, 0, 0, 1, 0, 0, 2, 2, 2];
    // Class-1 blip at index 3 is corrected; the trailing class-2 run
    // touches the boundary and is left alone.
    let weak = ecg_weak_labels(&times, &preds, 30.0);
    assert_eq!(weak, vec![(3, 0)]);
}
