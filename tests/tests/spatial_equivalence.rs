//! Matcher-backend equivalence through the full engine: **every
//! scenario in the runtime registry** must score bit-for-bit identically
//! whether the pairwise matchers run on the spatial grid index or the
//! O(n²) reference scans — across world seeds, stream sizes, and the
//! 1/2/8-thread ladder — and so must crowded video windows dense enough
//! to clear the indexed cutoff (`omg_geom::matchers::INDEX_MIN`).
//!
//! This is the system-level half of the equivalence argument in
//! `omg_geom::matchers`: the property tests prove the matchers agree on
//! arbitrary scenes; this suite proves nothing between the matcher and
//! the severity — tracking, windowing, monitors, thread chunking —
//! reintroduces a difference.

use omg_bench::crowd::crowd_windows;
use omg_bench::scenarios::all_scenarios;
use omg_bench::video::FLICKER_T;
use omg_core::runtime::ThreadPool;
use omg_core::stream::StreamMonitor;
use omg_domains::{video_assertion_set, video_prepared_assertion_set, VideoPrepare};
use omg_geom::matchers::{with_backend, MatchBackend};
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 8];

proptest! {
    /// Registry-wide: each scenario's batch severities under the indexed
    /// backend equal those under the reference backend, at every thread
    /// count. (Scenarios are rebuilt inside each backend scope so no
    /// state crosses over.)
    #[test]
    fn every_scenario_scores_equal_under_both_backends(seed in 0u64..60, size in 8usize..24) {
        for threads in THREADS {
            let pool = ThreadPool::exact(threads);
            let score = || -> Vec<_> {
                all_scenarios(seed, size)
                    .iter()
                    .map(|s| s.score_batch(&pool))
                    .collect()
            };
            let indexed = with_backend(MatchBackend::Indexed, score);
            let reference = with_backend(MatchBackend::Reference, score);
            prop_assert_eq!(
                &indexed, &reference,
                "backend divergence (seed={}, size={}, threads={})",
                seed, size, threads
            );
        }
    }
}

/// Crowded windows — dense enough that every matcher takes the grid
/// path — through the plain video assertion set.
#[test]
fn crowded_windows_score_equal_under_both_backends() {
    let windows = crowd_windows(300, 4, 17);
    let set = video_assertion_set(FLICKER_T);
    let score = || -> Vec<_> { windows.iter().map(|w| set.check_all(w)).collect() };
    let indexed = with_backend(MatchBackend::Indexed, score);
    let reference = with_backend(MatchBackend::Reference, score);
    assert_eq!(indexed, reference);
}

/// Crowded windows through the streaming monitor at the thread ladder:
/// reports and assertion database must match the reference backend
/// exactly, so the fast path may not change a single logged severity.
#[test]
fn crowded_stream_monitor_matches_reference_backend_at_every_thread_count() {
    let windows = crowd_windows(300, 6, 23);
    let run = |threads: usize| {
        let mut m = StreamMonitor::new(
            video_prepared_assertion_set(FLICKER_T),
            VideoPrepare::new(FLICKER_T),
        );
        let reports = m.ingest_batch(&windows, &ThreadPool::exact(threads));
        (reports, m.db().clone())
    };
    let want = with_backend(MatchBackend::Reference, || run(1));
    for threads in THREADS {
        let got = with_backend(MatchBackend::Indexed, || run(threads));
        assert_eq!(got, want, "diverged at {threads} threads");
    }
}
