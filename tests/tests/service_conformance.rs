//! The multi-tenant service's conformance suite: **every scenario in
//! the runtime registry** — current and future — automatically gets the
//! service-path contract checked, with zero per-scenario test code:
//!
//! * N interleaved sessions driven through the service (round-robin
//!   bursts, bounded queues exercising `QueueFull` backpressure, drains
//!   and polls interleaved mid-stream) each deliver **bit-for-bit** the
//!   severities and uncertainties of an independent sequential
//!   `StreamScorer` run of the same items, at 1, 2, and 8 drain
//!   workers;
//! * per-session database retention (the flat-memory knob) never
//!   changes a single delivered score;
//! * the clamped edges — a one-item session, an empty session — hold
//!   through the service path too.
//!
//! Registering a scenario in `omg_bench::scenarios::all_scenarios` /
//! `service_for` is what puts it under this suite — a new use case is
//! service-conformance-tested by construction.

use omg_bench::scenarios::{all_services, service_for};
use omg_core::runtime::ThreadPool;
use omg_core::SeverityMatrix;
use omg_service::{DynService, ServiceConfig, SessionId};
use proptest::prelude::*;

const WORKERS: [usize; 3] = [1, 2, 8];

/// The three sessions a conformance pass interleaves: the full stream,
/// a prefix, and an offset suffix — overlapping slices, so shared
/// state leaking across sessions cannot cancel out.
fn session_slices(len: usize) -> [(usize, usize); 3] {
    let prefix = len.div_ceil(2);
    let offset = len / 3;
    [(0, len), (0, prefix), (offset, len - offset)]
}

/// Drives `sessions` interleaved through `svc` (burst-ingest with
/// backpressure, drain, poll) and asserts each session's delivered
/// outputs equal its independent sequential reference.
fn assert_sessions_conform(
    svc: &dyn DynService,
    slices: &[(usize, usize)],
    pool: &ThreadPool,
    burst: usize,
    label: &str,
) {
    let mut cursors = vec![0usize; slices.len()];
    let mut delivered: Vec<(SeverityMatrix, Vec<f64>)> =
        vec![(SeverityMatrix::new(), Vec::new()); slices.len()];
    loop {
        let mut progressed = false;
        for (s, &(start, len)) in slices.iter().enumerate() {
            let session = SessionId(s as u64);
            for _ in 0..burst {
                if cursors[s] >= len {
                    break;
                }
                // Backpressure: a full queue defers the rest of the
                // burst to after the drain below.
                if svc
                    .try_ingest_position(session, start + cursors[s])
                    .is_err()
                {
                    break;
                }
                cursors[s] += 1;
                progressed = true;
            }
        }
        svc.drain(pool);
        for (s, out) in delivered.iter_mut().enumerate() {
            let (sev, unc) = svc.poll(SessionId(s as u64)).expect("open session");
            out.0.append(&sev);
            out.1.extend(unc);
        }
        if !progressed && svc.queued() == 0 {
            break;
        }
    }
    for (s, &(start, len)) in slices.iter().enumerate() {
        let (sev, unc) = svc.finish(SessionId(s as u64)).expect("open session");
        delivered[s].0.append(&sev);
        delivered[s].1.extend(unc);
        assert_eq!(
            delivered[s],
            svc.sequential_reference(start, len),
            "{label}: session {s} (slice {start}+{len}) diverged from its sequential run"
        );
    }
    assert_eq!(svc.sessions(), 0, "{label}: finish tears sessions down");
}

proptest! {
    /// The registry-wide service conformance property: for every
    /// registered scenario, interleaved sessions through the
    /// multi-tenant service deliver bit-for-bit the outputs of
    /// independent sequential runs, at 1, 2, and 8 drain workers —
    /// with small bounded queues (backpressure exercised) and tight
    /// database retention (which must not affect outputs).
    #[test]
    fn every_scenario_conforms_through_the_service(seed in 0u64..60, size in 8usize..24) {
        let config = ServiceConfig::default()
            .with_queue_capacity(8)
            .with_retention(4);
        for workers in WORKERS {
            let pool = ThreadPool::exact(workers);
            for svc in all_services(seed, size, &config) {
                let slices = session_slices(svc.stream_len());
                assert_sessions_conform(
                    svc.as_ref(),
                    &slices,
                    &pool,
                    3,
                    &format!("{} (seed={seed}, size={size}, workers={workers})", svc.name()),
                );
            }
        }
    }
}

/// Clamped-edge conformance through the service: a one-item session
/// scores its single (doubly clamped) window, and an opened-but-empty
/// session finishes cleanly with no output.
#[test]
fn tiny_and_empty_sessions_conform() {
    let config = ServiceConfig::default().with_queue_capacity(4);
    for svc in all_services(7, 8, &config) {
        let pool = ThreadPool::exact(2);
        let one = SessionId(0);
        let empty = SessionId(1);
        svc.try_ingest_position(one, 0).expect("capacity");
        svc.open(empty);
        svc.drain(&pool);
        let mut got = svc.poll(one).expect("open session");
        let (sev, unc) = svc.finish(one).expect("open session");
        got.0.append(&sev);
        got.1.extend(unc);
        assert_eq!(
            got,
            svc.sequential_reference(0, 1),
            "{}: one-item session",
            svc.name()
        );
        let (sev, unc) = svc.finish(empty).expect("open session");
        assert!(
            sev.is_empty() && unc.is_empty(),
            "{}: empty session has no output",
            svc.name()
        );
        assert_eq!(svc.sessions(), 0);
    }
}

/// The accounting the soak benchmark relies on: once finished, every
/// accepted item was scored exactly once, across interleaved sessions.
#[test]
fn every_accepted_item_is_scored_exactly_once() {
    let svc = service_for(
        "video",
        5,
        20,
        ServiceConfig::default()
            .with_queue_capacity(8)
            .with_retention(4),
    )
    .expect("video is registered");
    let pool = ThreadPool::exact(2);
    let slices = session_slices(svc.stream_len());
    assert_sessions_conform(svc.as_ref(), &slices, &pool, 4, "video accounting");
    let total: usize = slices.iter().map(|&(_, len)| len).sum();
    assert_eq!(svc.accepted(), total);
    assert_eq!(svc.scored(), total, "finish flushes every tail window");
}
