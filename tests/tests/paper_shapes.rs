//! The paper's qualitative claims, asserted as tests against the
//! simulated evaluation (the shapes, not the absolute numbers).

use omg_domains::video_assertion_set;
use omg_sim::detector::{Detection, DetectorConfig, Provenance, SimDetector};
use omg_sim::traffic::{TrafficConfig, TrafficWorld};

#[test]
fn assertions_find_high_confidence_errors() {
    // §5.3: errors caught by assertions reach high confidence percentiles,
    // which uncertainty-based monitoring cannot flag.
    let mut world = TrafficWorld::new(TrafficConfig::night_street(), 77);
    let frames = world.steps(600);
    let det = SimDetector::pretrained(DetectorConfig::default(), 1);
    let dets: Vec<Vec<Detection>> = frames
        .iter()
        .map(|f| det.detect_frame(f.index, &f.signals))
        .collect();
    let all_conf: Vec<f64> = dets
        .iter()
        .flat_map(|d| d.iter().map(|x| x.scored.score))
        .collect();
    let err_conf: Vec<f64> = dets
        .iter()
        .flat_map(|d| d.iter().filter(|x| x.is_error()).map(|x| x.scored.score))
        .collect();
    assert!(!err_conf.is_empty(), "the night detector must make errors");
    let top_err = err_conf.iter().cloned().fold(0.0f64, f64::max);
    let pct = omg_eval::stats::percentile_rank(&all_conf, top_err);
    assert!(
        pct > 80.0,
        "top error confidence should be high percentile: {pct:.0}th"
    );
}

#[test]
fn errors_are_systematic_not_uniform() {
    // §1: errors concentrate on a subpopulation (dark vehicles), which is
    // why assertion-flagged data is informative.
    let mut world = TrafficWorld::new(TrafficConfig::night_street(), 78);
    let frames = world.steps(500);
    let det = SimDetector::pretrained(DetectorConfig::default(), 1);
    let mut dark_missed = 0usize;
    let mut dark_total = 0usize;
    let mut easy_missed = 0usize;
    let mut easy_total = 0usize;
    for f in &frames {
        let dets = det.detect_frame(f.index, &f.signals);
        for s in f.signals.iter().filter(|s| !s.is_clutter()) {
            let detected = dets.iter().any(|d| {
                matches!(d.provenance, Provenance::Object { track_id, .. } if track_id == s.track_id)
            });
            if s.quality < 0.5 {
                dark_total += 1;
                dark_missed += usize::from(!detected);
            } else {
                easy_total += 1;
                easy_missed += usize::from(!detected);
            }
        }
    }
    assert!(dark_total > 20 && easy_total > 100);
    let dark_rate = dark_missed as f64 / dark_total as f64;
    let easy_rate = easy_missed as f64 / easy_total as f64;
    assert!(
        dark_rate > 2.0 * easy_rate,
        "misses must concentrate: dark {dark_rate:.2} vs easy {easy_rate:.2}"
    );
}

#[test]
fn flagged_frames_contain_more_errors_than_random_frames() {
    // The premise behind assertion-based data selection (§3).
    let mut world = TrafficWorld::new(TrafficConfig::night_street(), 79);
    let frames = world.steps(400);
    let det = SimDetector::pretrained(DetectorConfig::default(), 1);
    let dets: Vec<Vec<Detection>> = frames
        .iter()
        .map(|f| det.detect_frame(f.index, &f.signals))
        .collect();
    let set = video_assertion_set(0.45);
    let mut flagged_err = 0usize;
    let mut flagged_n = 0usize;
    let mut clean_err = 0usize;
    let mut clean_n = 0usize;
    for c in 0..frames.len() {
        let lo = c.saturating_sub(2);
        let hi = (c + 3).min(frames.len());
        let window = omg_domains::VideoWindow::new(
            (lo..hi)
                .map(|i| omg_domains::VideoFrame {
                    index: frames[i].index,
                    time: frames[i].time,
                    dets: dets[i].iter().map(|d| d.scored).collect(),
                })
                .collect(),
            c - lo,
        );
        let fired = set.check_all(&window).iter().any(|(_, s)| s.fired());
        let errors = dets[c].iter().filter(|d| d.is_error()).count();
        if fired {
            flagged_err += errors;
            flagged_n += 1;
        } else {
            clean_err += errors;
            clean_n += 1;
        }
    }
    assert!(
        flagged_n > 10 && clean_n > 10,
        "need both populations: {flagged_n}/{clean_n}"
    );
    let flagged_rate = flagged_err as f64 / flagged_n as f64;
    let clean_rate = clean_err as f64 / clean_n as f64;
    assert!(
        flagged_rate > clean_rate,
        "flagged frames must be error-richer: {flagged_rate:.2} vs {clean_rate:.2}"
    );
}
