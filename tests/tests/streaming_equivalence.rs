//! The streaming engine's contract: for every deployed scenario, the
//! incremental prepare-once path is **bit-for-bit equal** to the batch
//! reference path, across stream lengths and thread counts — and the
//! expensive per-window preparation runs exactly once per window.
//!
//! (Heinrichs 2023 motivates the incremental formulation: online
//! monitoring has to keep up with the stream. The paper's §7 motivates
//! the equality: assertions must be checkable "over every model
//! invocation", so the fast path may not change a single severity.)

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use omg_bench::video::{self, FLICKER_T};
use omg_bench::{avx, ecgx, newsx};
use omg_core::runtime::ThreadPool;
use omg_core::stream::{score_stream_chunked, CountingPrepare, StreamMonitor};
use omg_core::Monitor;
use omg_domains::{
    av_assertion_set, av_prepared_assertion_set, video_assertion_set, video_prepared_assertion_set,
    VideoPrepare,
};
use omg_sim::detector::SimDetector;
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 8];

/// Pretraining a detector is by far the most expensive step of a case
/// (a 7,000-example corpus, 30 epochs); the equivalence properties vary
/// the *world* per case, so one shared pretrained model suffices.
fn detector() -> &'static SimDetector {
    static DETECTOR: OnceLock<SimDetector> = OnceLock::new();
    DETECTOR.get_or_init(|| video::pretrained_detector(1))
}

fn camera() -> &'static SimDetector {
    static CAMERA: OnceLock<SimDetector> = OnceLock::new();
    CAMERA.get_or_init(|| avx::pretrained_camera(1))
}

proptest! {
    #[test]
    fn video_stream_equals_batch(seed in 0u64..200, len in 5usize..24) {
        let scenario = video::VideoScenario::night_street(seed, len, 1);
        let dets = video::detect_all(detector(), &scenario.pool_frames);
        let batch_set = video_assertion_set(FLICKER_T);
        let want = video::score_frames(
            &batch_set,
            &scenario.pool_frames,
            &dets,
            &ThreadPool::sequential(),
        );
        let stream_set = video_prepared_assertion_set(FLICKER_T);
        let preparer = VideoPrepare::new(FLICKER_T);
        for threads in THREADS {
            let got = video::stream_score_frames(
                &stream_set,
                &preparer,
                &scenario.pool_frames,
                &dets,
                &ThreadPool::new(threads),
            );
            prop_assert_eq!(
                &got, &want,
                "video stream != batch (seed={}, len={}, threads={})", seed, len, threads
            );
        }
    }

    #[test]
    fn ecg_stream_equals_batch(seed in 0u64..200, len in 8usize..48) {
        let scenario = ecgx::EcgScenario::new(seed, 40, len, 10);
        let mlp = ecgx::pretrained_classifier(&scenario, seed ^ 3);
        let want = ecgx::score_pool(&mlp, &scenario.pool, &ThreadPool::sequential());
        for threads in THREADS {
            let got = ecgx::stream_score_pool(&mlp, &scenario.pool, &ThreadPool::new(threads));
            prop_assert_eq!(
                &got, &want,
                "ecg stream != batch (seed={}, len={}, threads={})", seed, len, threads
            );
        }
    }

    #[test]
    fn av_stream_equals_batch(seed in 0u64..200, scenes in 1u64..3) {
        let scenario = avx::AvScenario::new(seed, scenes, 1);
        let dets = avx::detect_all(camera(), &scenario.pool);
        let want = avx::score_samples(
            &av_assertion_set(),
            &scenario.pool,
            &dets,
            &ThreadPool::sequential(),
        );
        let prepared = av_prepared_assertion_set();
        for threads in THREADS {
            let got = avx::stream_score_samples(
                &prepared,
                &scenario.pool,
                &dets,
                &ThreadPool::new(threads),
            );
            prop_assert_eq!(
                &got, &want,
                "av stream != batch (seed={}, scenes={}, threads={})", seed, scenes, threads
            );
        }
    }

    #[test]
    fn news_stream_equals_batch(seed in 0u64..200, scenes in 5u64..30) {
        let scenario = newsx::NewsScenario::new(seed, scenes);
        let batch_groups = newsx::flagged_groups(&scenario, &ThreadPool::sequential());
        let batch_fired = newsx::scenes_fired(&scenario);
        for threads in THREADS {
            let reports = newsx::stream_scene_reports(&scenario, &ThreadPool::new(threads));
            prop_assert_eq!(reports.len(), scenario.scenes.len());
            let stream_groups: Vec<_> = reports.iter().flat_map(|r| r.groups.clone()).collect();
            prop_assert_eq!(
                &stream_groups, &batch_groups,
                "news groups diverge (seed={}, scenes={}, threads={})", seed, scenes, threads
            );
            let stream_fired = reports.iter().filter(|r| r.severity > 0.0).count();
            prop_assert_eq!(
                stream_fired, batch_fired,
                "news fire counts diverge (seed={}, scenes={}, threads={})", seed, scenes, threads
            );
        }
    }

    #[test]
    fn stream_monitor_equals_batch_monitor_on_video(seed in 0u64..200, len in 2usize..16) {
        // The monitor-level guarantee: StreamMonitor's reports and
        // database match Monitor's, sample for sample, at 1/2/8 threads.
        // (Windows built by hand from the shared detector: the
        // `monitor_windows` convenience pretrains a fresh one per call.)
        let mut world = omg_sim::traffic::TrafficWorld::new(
            omg_sim::traffic::TrafficConfig::night_street(),
            seed,
        );
        let frames = world.steps(len);
        let dets = video::detect_all(detector(), &frames);
        let windows: Vec<_> = (0..len).map(|c| video::window_at(&frames, &dets, c)).collect();
        let mut reference = Monitor::with_assertions(video_assertion_set(FLICKER_T));
        let want: Vec<_> = windows.iter().map(|w| reference.process(w)).collect();
        let mut stream = StreamMonitor::new(
            video_prepared_assertion_set(FLICKER_T),
            VideoPrepare::new(FLICKER_T),
        );
        let got: Vec<_> = windows.iter().map(|w| stream.ingest(w)).collect();
        prop_assert_eq!(&got, &want, "ingest != process (seed={}, len={})", seed, len);
        prop_assert_eq!(stream.db(), reference.db());
        prop_assert_eq!(stream.prepare_count(), windows.len());
        for threads in THREADS {
            let mut batch = StreamMonitor::new(
                video_prepared_assertion_set(FLICKER_T),
                VideoPrepare::new(FLICKER_T),
            );
            let reports = batch.ingest_batch(&windows, &ThreadPool::new(threads));
            prop_assert_eq!(&reports, &want, "ingest_batch diverged at {} threads", threads);
            prop_assert_eq!(batch.db(), reference.db());
        }
    }
}

/// The prepare-once invariant, measured: scoring an `n`-frame stream
/// runs the video preparation (tracking + consistency check) exactly
/// `n` times — once per window — on the sequential path, and exactly
/// once per window *plus re-fed chunk margins* on the chunked parallel
/// path (margins re-prepare, but their reports are discarded, never
/// double-emitted).
#[test]
fn video_preparation_runs_exactly_once_per_window() {
    let scenario = video::VideoScenario::night_street(11, 60, 1);
    let dets = video::detect_all(detector(), &scenario.pool_frames);
    let set = video_prepared_assertion_set(FLICKER_T);
    let n = scenario.pool_frames.len();

    let counter = Arc::new(AtomicUsize::new(0));
    let probe = CountingPrepare::new(VideoPrepare::new(FLICKER_T), counter.clone());
    let out = score_stream_chunked(n, video::WINDOW_HALF, &ThreadPool::sequential(), |_| {
        video::VideoStreamScorer::new(&set, &probe, &scenario.pool_frames, &dets)
    });
    assert_eq!(out.len(), n);
    assert_eq!(
        counter.load(Ordering::SeqCst),
        n,
        "sequential streaming must prepare exactly once per window"
    );

    // StreamMonitor counts its own prepares — same invariant.
    let mut world =
        omg_sim::traffic::TrafficWorld::new(omg_sim::traffic::TrafficConfig::night_street(), 5);
    let frames = world.steps(25);
    let wdets = video::detect_all(detector(), &frames);
    let windows: Vec<_> = (0..25)
        .map(|c| video::window_at(&frames, &wdets, c))
        .collect();
    let mut monitor = StreamMonitor::new(
        video_prepared_assertion_set(FLICKER_T),
        VideoPrepare::new(FLICKER_T),
    );
    for w in &windows {
        monitor.ingest(w);
    }
    assert_eq!(monitor.prepare_count(), windows.len());
}

/// Chunked parallel streaming re-prepares only the chunk margins: with
/// chunk size `ceil(n / (threads * 4))` and margin `2 * WINDOW_HALF`,
/// the prepare count stays within `n + n_chunks * 2 * WINDOW_HALF`.
#[test]
fn parallel_streaming_overhead_is_bounded_by_chunk_margins() {
    let scenario = video::VideoScenario::night_street(13, 80, 1);
    let dets = video::detect_all(detector(), &scenario.pool_frames);
    let set = video_prepared_assertion_set(FLICKER_T);
    let n = scenario.pool_frames.len();
    let threads = 4;

    let counter = Arc::new(AtomicUsize::new(0));
    let probe = CountingPrepare::new(VideoPrepare::new(FLICKER_T), counter.clone());
    let out = score_stream_chunked(n, video::WINDOW_HALF, &ThreadPool::new(threads), |_| {
        video::VideoStreamScorer::new(&set, &probe, &scenario.pool_frames, &dets)
    });
    assert_eq!(out.len(), n);
    let chunk = n.div_ceil(threads * 4).max(1);
    let n_chunks = n.div_ceil(chunk);
    let prepares = counter.load(Ordering::SeqCst);
    assert!(
        prepares >= n && prepares <= n + n_chunks * 2 * video::WINDOW_HALF,
        "prepare count {prepares} outside [{n}, {}]",
        n + n_chunks * 2 * video::WINDOW_HALF
    );
}
