//! The scenario engine's conformance suite: **every scenario in the
//! runtime registry** — current and future — automatically gets the
//! streaming engine's contract checked, with zero per-scenario test
//! code:
//!
//! * the incremental prepare-once path is **bit-for-bit equal** to the
//!   batch reference path, across world seeds, stream lengths, and the
//!   1/2/8-thread ladder;
//! * the expensive per-window preparation runs exactly once per window
//!   sequentially, and within the chunk-margin bound in parallel;
//! * every trainable scenario drives active-learning rounds end to end.
//!
//! (Heinrichs 2023 motivates the incremental formulation: online
//! monitoring has to keep up with the stream. The paper's §7 motivates
//! the equality: assertions must be checkable "over every model
//! invocation", so the fast path may not change a single severity.)
//!
//! Registering a scenario in `omg_bench::scenarios::all_scenarios` is
//! what puts it under this suite — a new use case is conformance-tested
//! by construction.

use omg_bench::scenarios::all_scenarios;
use omg_bench::video::{self, FLICKER_T};
use omg_core::runtime::ThreadPool;
use omg_core::stream::StreamMonitor;
use omg_core::Monitor;
use omg_domains::{video_assertion_set, video_prepared_assertion_set, VideoPrepare};
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 8];

proptest! {
    /// The registry-wide equivalence property: for every registered
    /// scenario, streaming severities and uncertainties equal the batch
    /// reference bit-for-bit at 1, 2, and 8 threads.
    #[test]
    fn every_scenario_streams_equal_to_batch(seed in 0u64..120, size in 8usize..32) {
        for scenario in all_scenarios(seed, size) {
            let want = scenario.score_batch(&ThreadPool::sequential());
            prop_assert_eq!(want.0.len(), scenario.len(), "{}: one row per position", scenario.name());
            for threads in THREADS {
                let got = scenario.score_stream(&ThreadPool::exact(threads));
                prop_assert_eq!(
                    &got, &want,
                    "{} stream != batch (seed={}, size={}, threads={})",
                    scenario.name(), seed, size, threads
                );
            }
        }
    }

    #[test]
    fn stream_monitor_equals_batch_monitor_on_video(seed in 0u64..200, len in 2usize..16) {
        // The monitor-level guarantee: StreamMonitor's reports and
        // database match Monitor's, sample for sample, at 1/2/8 threads.
        // (Windows built by hand from the shared detector: the
        // `monitor_windows` convenience pretrains a fresh one per call.)
        let mut world = omg_sim::traffic::TrafficWorld::new(
            omg_sim::traffic::TrafficConfig::night_street(),
            seed,
        );
        let frames = world.steps(len);
        let dets = video::detect_all(video::shared_pretrained_detector(), &frames);
        let windows: Vec<_> = (0..len).map(|c| video::window_at(&frames, &dets, c)).collect();
        let mut reference = Monitor::with_assertions(video_assertion_set(FLICKER_T));
        let want: Vec<_> = windows.iter().map(|w| reference.process(w)).collect();
        let mut stream = StreamMonitor::new(
            video_prepared_assertion_set(FLICKER_T),
            VideoPrepare::new(FLICKER_T),
        );
        let got: Vec<_> = windows.iter().map(|w| stream.ingest(w)).collect();
        prop_assert_eq!(&got, &want, "ingest != process (seed={}, len={})", seed, len);
        prop_assert_eq!(stream.db(), reference.db());
        prop_assert_eq!(stream.prepare_count(), windows.len());
        for threads in THREADS {
            let mut batch = StreamMonitor::new(
                video_prepared_assertion_set(FLICKER_T),
                VideoPrepare::new(FLICKER_T),
            );
            let reports = batch.ingest_batch(&windows, &ThreadPool::exact(threads));
            prop_assert_eq!(&reports, &want, "ingest_batch diverged at {} threads", threads);
            prop_assert_eq!(batch.db(), reference.db());
        }
    }
}

/// Clamped-edge conformance for the zero-copy window engine: tiny
/// streams — a single position, and streams shorter than one full
/// window (`n < 2 * half + 1`, where both clamps apply to every
/// window) — score identically on the borrowed-window streaming path
/// and the batch reference, at every thread count (which also crosses
/// chunk boundaries at sizes comparable to the window).
#[test]
fn tiny_streams_score_equal_to_batch_at_the_clamped_edges() {
    for size in [1usize, 2, 3, 5] {
        for scenario in all_scenarios(7, size) {
            let want = scenario.score_batch(&ThreadPool::sequential());
            for threads in THREADS {
                assert_eq!(
                    scenario.score_stream(&ThreadPool::exact(threads)),
                    want,
                    "{} size={size} threads={threads}",
                    scenario.name()
                );
            }
        }
    }
}

/// The prepare-once invariant, measured through the registry's counting
/// probe: sequentially, scoring an `n`-position stream runs each
/// scenario's preparation (tracking, projection, segmentation, grouping)
/// exactly `n` times — once per window.
#[test]
fn preparation_runs_exactly_once_per_window_sequentially() {
    for scenario in all_scenarios(11, 60) {
        let ((sev, _), prepares) = scenario.score_stream_counting(&ThreadPool::sequential());
        assert_eq!(sev.len(), scenario.len());
        assert_eq!(
            prepares,
            scenario.len(),
            "{}: sequential streaming must prepare exactly once per window",
            scenario.name()
        );
    }
}

/// Chunked parallel streaming re-prepares only the chunk margins: with
/// chunk size `ceil(n / (threads * 4))` and margin `2 * half`, each
/// scenario's prepare count stays within `n + n_chunks * 2 * half`.
#[test]
fn parallel_streaming_overhead_is_bounded_by_chunk_margins() {
    let threads = 4;
    for scenario in all_scenarios(13, 80) {
        let n = scenario.len();
        let ((sev, _), prepares) = scenario.score_stream_counting(&ThreadPool::exact(threads));
        assert_eq!(sev.len(), n);
        let chunk = n.div_ceil(threads * 4).max(1);
        let n_chunks = n.div_ceil(chunk);
        let bound = n + n_chunks * 2 * scenario.window_half();
        assert!(
            prepares >= n && prepares <= bound,
            "{}: prepare count {prepares} outside [{n}, {bound}]",
            scenario.name()
        );
    }
}

/// Every trainable scenario runs active-learning rounds end to end
/// through the erased registry learner (the fifth scenario is covered
/// here with zero scenario-specific test code); monitoring-only
/// scenarios hand out no learner.
#[test]
fn every_trainable_scenario_drives_learning_rounds() {
    use rand::SeedableRng;
    let mut saw_learner = 0usize;
    for scenario in all_scenarios(5, 24) {
        let Some(mut learner) = scenario.learner(ThreadPool::sequential()) else {
            assert_eq!(
                scenario.name(),
                "news",
                "only TV news is monitoring-only (no training access, §5.1)"
            );
            continue;
        };
        saw_learner += 1;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let records = omg_active::run_rounds(
            learner.as_mut(),
            &mut omg_active::RandomStrategy,
            2,
            4,
            &mut rng,
        );
        assert_eq!(
            records.len(),
            2,
            "{}: one record per round",
            scenario.name()
        );
        assert!(
            records.iter().all(|r| r.labeled == 4),
            "{}: every round labels its budget",
            scenario.name()
        );
    }
    assert_eq!(saw_learner, 4, "four of the five scenarios train");
}
