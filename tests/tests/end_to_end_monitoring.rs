//! End-to-end monitoring: world → detector → assertions → database, for
//! all four domains.

use omg_core::runtime::ThreadPool;
use omg_core::Monitor;
use omg_domains::{av_assertion_set, video_assertion_set, AvFrame, VideoFrame, VideoWindow};
use omg_sim::av::{AvConfig, AvWorld};
use omg_sim::detector::{DetectorConfig, SimDetector};
use omg_sim::news::{NewsConfig, NewsWorld};
use omg_sim::traffic::{TrafficConfig, TrafficWorld};

fn video_windows(n: usize, seed: u64) -> Vec<VideoWindow> {
    let mut world = TrafficWorld::new(TrafficConfig::night_street(), seed);
    let frames = world.steps(n);
    let detector = SimDetector::pretrained(DetectorConfig::default(), 1);
    let dets: Vec<Vec<_>> = frames
        .iter()
        .map(|f| detector.detect_frame(f.index, &f.signals))
        .collect();
    (0..n)
        .map(|c| {
            let lo = c.saturating_sub(2);
            let hi = (c + 3).min(n);
            VideoWindow::new(
                (lo..hi)
                    .map(|i| VideoFrame {
                        index: frames[i].index,
                        time: frames[i].time,
                        dets: dets[i].iter().map(|d| d.scored).collect(),
                    })
                    .collect(),
                c - lo,
            )
        })
        .collect()
}

#[test]
fn video_pipeline_fires_and_records() {
    let windows = video_windows(300, 5);
    let mut monitor = Monitor::with_assertions(video_assertion_set(0.45));
    for w in &windows {
        monitor.process(w);
    }
    assert_eq!(monitor.samples_processed(), 300);
    let counts = monitor.db().fire_counts();
    assert_eq!(counts.len(), 3);
    assert!(
        counts.iter().sum::<usize>() > 10,
        "a night-deployed still-image detector must trip assertions: {counts:?}"
    );
    // The severity matrix is dense and consistent with the counts.
    let matrix = monitor.db().severity_matrix();
    assert_eq!(matrix.len(), 300);
    for (m, &count) in counts.iter().enumerate() {
        let col = matrix.iter().filter(|r| r[m] > 0.0).count();
        assert_eq!(col, count);
    }
}

#[test]
fn av_pipeline_catches_sensor_disagreement() {
    let world = AvWorld::new(AvConfig::default(), 2);
    let camera = SimDetector::pretrained(DetectorConfig::default(), 1);
    let mut monitor = Monitor::with_assertions(av_assertion_set());
    for scene in 0..5u64 {
        for sample in world.scene(scene) {
            let dets = camera.detect_frame(scene * 10_000 + sample.index as u64, &sample.signals);
            monitor.process(&AvFrame {
                time: sample.time,
                camera_dets: dets.iter().map(|d| d.scored).collect(),
                lidar_boxes: sample
                    .lidar
                    .iter()
                    .filter(|l| l.score >= 0.3)
                    .map(|l| l.bbox)
                    .collect(),
                camera: sample.camera,
            });
        }
    }
    let agree = monitor.assertions().id_of("agree").unwrap();
    assert!(
        monitor.db().fire_count(agree) > 5,
        "LIDAR and a weak camera must disagree somewhere"
    );
}

#[test]
fn news_pipeline_flags_attribute_inconsistencies() {
    use omg_core::Assertion;
    let world = NewsWorld::new(NewsConfig::default(), 4);
    let assertion = omg_domains::news::news_assertion();
    let fired = world
        .scenes(0..150)
        .iter()
        .filter(|s| assertion.check(s).fired())
        .count();
    assert!(
        fired > 3,
        "transient identity/gender/hair errors must fire: {fired}"
    );
    assert!(fired < 150, "not every scene should fire: {fired}");
}

/// The deployment-scale path on real domain assertions: `process_batch`
/// over the night-street stream reproduces the sequential monitor
/// bit-for-bit (reports, database, corrective-action count) at every
/// thread count.
#[test]
fn video_batch_monitoring_matches_sequential() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    let windows = video_windows(200, 5);

    let build = || {
        let mut m = Monitor::with_assertions(video_assertion_set(0.45));
        let alerts = Arc::new(AtomicUsize::new(0));
        let a = alerts.clone();
        m.on_severity(omg_core::Severity::new(1.0), move |_, _| {
            a.fetch_add(1, Ordering::SeqCst);
        });
        (m, alerts)
    };

    let (mut seq, seq_alerts) = build();
    let seq_reports: Vec<_> = windows.iter().map(|w| seq.process(w)).collect();
    for threads in [1, 2, 8] {
        let (mut par, par_alerts) = build();
        let par_reports = par.process_batch(&windows, &ThreadPool::exact(threads));
        assert_eq!(
            par_reports, seq_reports,
            "reports differ at {threads} threads"
        );
        assert_eq!(par.db(), seq.db(), "database differs at {threads} threads");
        assert_eq!(
            par_alerts.load(Ordering::SeqCst),
            seq_alerts.load(Ordering::SeqCst),
            "corrective actions differ at {threads} threads"
        );
    }
}

#[test]
fn corrective_actions_trigger_on_threshold() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    let windows = video_windows(150, 9);
    let mut monitor = Monitor::with_assertions(video_assertion_set(0.45));
    let alerts = Arc::new(AtomicUsize::new(0));
    let a = alerts.clone();
    monitor.on_severity(omg_core::Severity::new(1.0), move |_, _| {
        a.fetch_add(1, Ordering::SeqCst);
    });
    for w in &windows {
        monitor.process(w);
    }
    assert_eq!(
        alerts.load(Ordering::SeqCst),
        monitor.db().any_fired_samples().len(),
        "one corrective action per flagged window"
    );
}
